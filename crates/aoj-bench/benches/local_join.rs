//! Benchmarks of the local non-blocking join algorithms: insert+probe
//! throughput of the hash, band and nested-loop indexes.

use aoj_core::index::JoinIndex;
use aoj_core::predicate::Predicate;
use aoj_core::tuple::{Rel, Tuple};
use aoj_joinalg::{BandIndex, NestedLoopIndex, SymmetricHashIndex};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn prefill(idx: &mut dyn JoinIndex, n: u64, key_space: i64) {
    for i in 0..n {
        let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
        idx.insert(Tuple::new(rel, i, (i as i64 * 37) % key_space, i));
    }
}

fn bench_insert_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("insert_probe_10k_state");
    g.bench_function("symmetric_hash_equi", |b| {
        let mut idx = SymmetricHashIndex::new();
        prefill(&mut idx, 10_000, 1000);
        let mut i = 10_000u64;
        b.iter(|| {
            i += 1;
            let t = Tuple::new(Rel::S, i, (i as i64 * 31) % 1000, i);
            let stats = idx.probe_count(&t);
            idx.insert(t);
            black_box(stats)
        });
    });
    g.bench_function("btree_band_w2", |b| {
        let mut idx = BandIndex::new(2);
        prefill(&mut idx, 10_000, 1000);
        let mut i = 10_000u64;
        b.iter(|| {
            i += 1;
            let t = Tuple::new(Rel::S, i, (i as i64 * 31) % 1000, i);
            let stats = idx.probe_count(&t);
            idx.insert(t);
            black_box(stats)
        });
    });
    g.bench_function("nested_loop_theta_1k_state", |b| {
        // Nested loop is O(state); keep state smaller.
        let mut idx = NestedLoopIndex::new(Predicate::NotEqual);
        prefill(&mut idx, 1_000, 100);
        let mut i = 1_000u64;
        b.iter(|| {
            i += 1;
            let t = Tuple::new(Rel::S, i, (i as i64 * 31) % 100, i);
            black_box(idx.probe_count(&t))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_insert_probe);
criterion_main!(benches);
