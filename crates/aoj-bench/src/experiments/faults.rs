//! The `faults` experiment: the fault-tolerance subsystem, measured.
//!
//! One fault-free simulator witness fixes the exact join multiset for a
//! seeded Zipf equi-join stream; then every backend (simulator, threaded
//! runtime, TCP process cluster) runs the same stream **under chaos**
//! through a [`SupervisedSession`], two legs each:
//!
//! * **ckpt-replay** — automatic checkpoints on a tuple cadence, one
//!   worker killed right after the second checkpoint adoption (the
//!   supervisor fires the backend's native kill primitive: simulator
//!   event kill, thread abort, process SIGKILL): recovery rolls back
//!   to that checkpoint and replays the suffix;
//! * **scratch-replay** — no checkpoint cadence at all, a worker killed
//!   on a processed-tuple threshold mid-stream: the degenerate rollback
//!   base, a fresh incarnation replaying from sequence 0.
//!
//! Every leg **aborts unless** the delivered match multiset equals the
//! fault-free witness exactly — no loss, no duplicates — so the numbers
//! below are only ever printed for runs that survived chaos correctly.
//! Reported per leg: end-to-end throughput under the crash, failure
//! detection latency, recovery (rollback + respawn + replay) time,
//! replayed tuples, and matches suppressed by the exactly-once dedup.
//!
//! Results go to stdout and to machine-readable
//! `BENCH_faults[_smoke].json`.

use std::time::Instant;

use aoj_core::fault::FaultPlan;
use aoj_core::predicate::Predicate;
use aoj_datagen::queries::{StreamItem, Workload};
use aoj_datagen::stream::{interleave, Arrivals};
use aoj_datagen::zipf::ZipfSampler;
use aoj_operators::{
    BackendChoice, JoinSession, OperatorKind, RecoveryStats, SessionBuilder, SupervisedSession,
};

use super::common::{banner, Table, SEED};

/// Zipf-skewed equi-join, equal stream sizes — the `lifecycle` shape,
/// sized so the kill lands well after the first checkpoint rotation.
fn faults_workload(n_each: usize, key_space: u64, seed: u64) -> Workload {
    let mut zr = ZipfSampler::new(key_space, 0.8, seed);
    let mut zs = ZipfSampler::new(key_space, 0.8, seed ^ 0xFA17);
    let item = |z: &mut ZipfSampler| StreamItem {
        key: z.next() as i64,
        aux: 0,
        bytes: 64,
    };
    Workload {
        name: "zipf-faults",
        predicate: Predicate::Equi,
        r_items: (0..n_each).map(|_| item(&mut zr)).collect(),
        s_items: (0..n_each).map(|_| item(&mut zs)).collect(),
    }
}

fn builder(w: &Workload, seed: u64, backend: BackendChoice) -> SessionBuilder {
    SessionBuilder::new(4, OperatorKind::Dynamic)
        .with_predicate(w.predicate.clone())
        .with_workload(w.name)
        .with_seed(seed)
        .with_backend(backend)
}

fn backend_label(backend: BackendChoice) -> &'static str {
    match backend {
        BackendChoice::Sim => "sim",
        BackendChoice::Threaded => "threaded",
        BackendChoice::Tcp => "tcp",
    }
}

/// The fault-free simulator witness: the exact `(R seq, S seq)` match
/// multiset every chaos leg must reproduce.
fn witness(w: &Workload, arrivals: &Arrivals) -> Vec<(u64, u64)> {
    let mut session = JoinSession::open(builder(w, SEED, BackendChoice::Sim));
    let mut sub = session.subscribe();
    session.push_batch(arrivals.iter().copied()).unwrap();
    let _ = session.close();
    let mut ids = Vec::new();
    while let Some(m) = sub.try_next() {
        ids.push((m.r_seq, m.s_seq));
    }
    ids.sort_unstable();
    ids
}

struct ChaosLeg {
    name: &'static str,
    backend: &'static str,
    exec_s: f64,
    throughput_tps: f64,
    matches: usize,
    stats: RecoveryStats,
}

/// One supervised run under the given fault plan; panics unless the
/// delivered multiset equals the witness and the kill actually fired.
fn run_chaos(
    name: &'static str,
    b: SessionBuilder,
    arrivals: &Arrivals,
    expect: &[(u64, u64)],
) -> ChaosLeg {
    let backend = backend_label(b.backend.choice);
    let dir = std::env::temp_dir().join(format!(
        "aoj-bench-faults-{backend}-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let start = Instant::now();
    let mut session = SupervisedSession::open(b, &dir);
    for &(rel, item) in arrivals.iter() {
        session.push(rel, item);
    }
    let outcome = session.close();
    let exec_s = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    let mut got: Vec<(u64, u64)> = outcome.matches.iter().map(|m| (m.r_seq, m.s_seq)).collect();
    got.sort_unstable();
    assert!(
        outcome.stats.crashes >= 1,
        "{backend} {name}: the injected kill never fired"
    );
    assert_eq!(
        got, expect,
        "{backend} {name}: chaos run lost or duplicated matches"
    );

    ChaosLeg {
        name,
        backend,
        exec_s,
        throughput_tps: arrivals.len() as f64 / exec_s,
        matches: got.len(),
        stats: outcome.stats,
    }
}

fn row(table: &mut Table, leg: &ChaosLeg) {
    table.row(vec![
        leg.name.to_string(),
        leg.backend.to_string(),
        format!("{:.3}", leg.exec_s),
        format!("{:.0}", leg.throughput_tps),
        leg.matches.to_string(),
        leg.stats.crashes.to_string(),
        leg.stats.detection_latency_us.to_string(),
        leg.stats.recovery_time_us.to_string(),
        leg.stats.replayed_tuples.to_string(),
        leg.stats.deduped_matches.to_string(),
        leg.stats.checkpoints.to_string(),
    ]);
}

fn json_run(leg: &ChaosLeg) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"backend\":\"{}\",\"exec_s\":{:.6},",
            "\"throughput_tps\":{:.1},\"matches\":{},\"crashes\":{},",
            "\"detection_latency_us\":{},\"recovery_time_us\":{},",
            "\"replayed_tuples\":{},\"deduped_matches\":{},",
            "\"checkpoints\":{},\"verified\":true}}"
        ),
        leg.name,
        leg.backend,
        leg.exec_s,
        leg.throughput_tps,
        leg.matches,
        leg.stats.crashes,
        leg.stats.detection_latency_us,
        leg.stats.recovery_time_us,
        leg.stats.replayed_tuples,
        leg.stats.deduped_matches,
        leg.stats.checkpoints,
    )
}

/// The `reproduce faults [--smoke]` entry point: runs **all three**
/// backends regardless of `--backend` (the cross-backend recovery
/// equivalence is the point). The TCP legs re-exec this binary as the
/// worker processes and SIGKILL one of them for real.
pub fn run_faults(smoke: bool) {
    let n_each = if smoke { 2_000 } else { 6_000 };
    let total = 2 * n_each as u64;
    let every = total / 6;
    // The scratch leg's kill lands just before mid-stream. (The
    // threaded runtime's native threshold counts joiner-processed
    // tuples — replicated across the join-matrix row — so its crash
    // point sits earlier in the pushed stream than the simulator's;
    // the verified multiset is crash-point independent.)
    let kill_at = (total * 2) / 5;
    banner(&format!(
        "fault tolerance{}: injected worker kills + automatic recovery, J=4, all backends",
        if smoke { " (smoke)" } else { "" },
    ));
    let w = faults_workload(n_each, 2_000, SEED);
    let arrivals = interleave(&w, SEED ^ 0xFA17);
    let expect = witness(&w, &arrivals);
    assert!(!expect.is_empty(), "vacuous chaos workload");
    println!(
        "  witness: {} matches over {} tuples; checkpoint every {every} tuples, \
         kill on the 2nd adoption (ckpt-replay) / near tuple {kill_at} (scratch-replay)",
        expect.len(),
        arrivals.len()
    );

    let mut table = Table::new(&[
        "leg",
        "backend",
        "exec (s)",
        "t/s",
        "matches",
        "crashes",
        "detect (us)",
        "recover (us)",
        "replayed",
        "deduped",
        "ckpts",
    ]);
    let mut runs = Vec::new();
    for backend in [
        BackendChoice::Sim,
        BackendChoice::Threaded,
        BackendChoice::Tcp,
    ] {
        let ckpt = run_chaos(
            "ckpt-replay",
            builder(&w, SEED, backend)
                .with_checkpoint_every(every)
                .with_fault_plan(FaultPlan::new().kill_on_checkpoint(1, 2)),
            &arrivals,
            &expect,
        );
        assert!(
            ckpt.stats.checkpoints >= 2,
            "{}: the kill's rollback base (2nd checkpoint) was never adopted",
            ckpt.backend
        );
        let scratch = run_chaos(
            "scratch-replay",
            builder(&w, SEED, backend)
                .with_fault_plan(FaultPlan::new().kill_after_tuples(2, kill_at)),
            &arrivals,
            &expect,
        );
        assert_eq!(
            scratch.stats.checkpoints, 0,
            "{}: the no-cadence leg unexpectedly checkpointed",
            scratch.backend
        );
        row(&mut table, &ckpt);
        row(&mut table, &scratch);
        runs.push(json_run(&ckpt));
        runs.push(json_run(&scratch));
    }
    table.print();
    println!(
        "  verified on all three backends: every chaos leg delivered the \
         fault-free witness multiset exactly (no loss, no duplicates)"
    );

    let json = format!(
        "{{\"experiment\":\"faults\",\"smoke\":{},\"workload\":\"{}\",\
         \"input_tuples\":{},\"kill_at\":{},\"checkpoint_every\":{},\
         \"witness_matches\":{},\"runs\":[{}]}}\n",
        smoke,
        w.name,
        arrivals.len(),
        kill_at,
        every,
        expect.len(),
        runs.join(","),
    );
    // Smoke runs (CI) write to a side file so they never clobber the
    // committed baseline.
    let path = if smoke {
        "BENCH_faults_smoke.json"
    } else {
        "BENCH_faults.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
