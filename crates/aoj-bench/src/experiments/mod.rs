//! Experiment modules, one per paper artifact (see DESIGN.md §4).

pub mod ablation;
pub mod common;
pub mod contract;
pub mod elastic;
pub mod faults;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod lifecycle;
pub mod skew;
pub mod table2;
pub mod wallclock;

pub use common::*;
