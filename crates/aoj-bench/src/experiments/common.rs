//! Shared experiment plumbing: scale constants, workload construction,
//! run helpers and table formatting.

use aoj_core::decision::DecisionConfig;
use aoj_datagen::queries::Workload;
use aoj_datagen::stream::{interleave, Arrivals};
use aoj_datagen::tpch::{ScaledGb, TpchDb};
use aoj_datagen::zipf::Skew;
use aoj_operators::{run, OperatorKind, RunConfig, RunReport, SourcePacing};

/// Simulated-GB → RAM-budget calibration: one simulated GB of lineitem is
/// ~6000 rows × 144 B ≈ 0.86 "simulated MB". The paper gives each joiner a
/// 2 GB heap against 10–640 GB datasets; we keep the same *relative*
/// headroom.
pub const SIM_MB: u64 = 1 << 20;

/// RAM budget (bytes) that comfortably fits the 10 GB-scale workloads on
/// 64 machines (the paper: "we increase the number of machines to 64 such
/// that StaticMid is given enough resources") but still lets a
/// skew-hammered SHJ joiner overflow ("SHJ could not fully operate in
/// memory even with 64 machines").
pub const BUDGET_64_MACHINES: u64 = 13 * SIM_MB / 10;

/// RAM budget for the 16-machine Table 2 runs: the optimal mapping fits,
/// the square grid and a hot SHJ partition do not.
pub const BUDGET_16_MACHINES: u64 = 7 * SIM_MB / 10;

/// Disk-tier cost multiplier: BerkeleyDB random access vs in-memory probe
/// is ~two orders of magnitude (the paper's Fig. 6c shows SHJ two orders
/// slower once spilled).
pub const SPILL_PENALTY: u64 = 100;

/// Default seed for experiment determinism.
pub const SEED: u64 = 0xA01_2014;

/// Generate the TPC-H database for one experiment.
pub fn db(gb: u32, skew: Skew) -> TpchDb {
    TpchDb::generate(ScaledGb::new(gb), skew, SEED)
}

/// Default interleaved arrivals for a workload.
pub fn arrivals_of(w: &Workload) -> Arrivals {
    interleave(w, SEED ^ 0x57AE)
}

/// Run one operator over a workload with a RAM budget.
pub fn run_operator(
    kind: OperatorKind,
    w: &Workload,
    arrivals: &Arrivals,
    j: u32,
    ram_budget: u64,
) -> RunReport {
    let mut cfg = RunConfig::new(j, kind);
    cfg.ram_budget = ram_budget;
    cfg.spill_penalty = SPILL_PENALTY;
    cfg.decision = warmup_decision(arrivals);
    run(arrivals, &w.predicate, w.name, &cfg)
}

/// Run with explicit pacing (latency experiments).
pub fn run_operator_paced(
    kind: OperatorKind,
    w: &Workload,
    arrivals: &Arrivals,
    j: u32,
    ram_budget: u64,
    pacing: SourcePacing,
) -> RunReport {
    let mut cfg = RunConfig::new(j, kind);
    cfg.ram_budget = ram_budget;
    cfg.spill_penalty = SPILL_PENALTY;
    cfg.decision = warmup_decision(arrivals);
    cfg.pacing = pacing;
    run(arrivals, &w.predicate, w.name, &cfg)
}

/// The paper's adaptation warm-up (§5.4: "begin adapting after at least
/// 500K tuples, less than 1% of the total input"), scaled: 1% of the
/// stream volume in bytes.
pub fn warmup_decision(arrivals: &Arrivals) -> DecisionConfig {
    let total_bytes: u64 = arrivals.iter().map(|(_, i)| i.bytes as u64).sum();
    DecisionConfig {
        epsilon_num: 1,
        epsilon_den: 1,
        min_total: total_bytes / 100,
    }
}

/// Markdown-ish table printer for harness output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format seconds with the Table 2 overflow marker.
pub fn secs_star(report: &RunReport) -> String {
    format!(
        "{:.2}{}",
        report.exec_secs(),
        if report.overflowed() { "*" } else { "" }
    )
}

/// Section banner.
pub fn banner(title: &str) {
    println!();
    println!("== {title} ==");
}
