//! The `skew` experiment: what hot-key handling buys on a live backend.
//!
//! The paper's grid makes tuple placement a pure policy choice (§4): any
//! row×column pair meets in exactly one cell, so the reshufflers can
//! route a hot key's build tuples across whole joiner *rows* and
//! round-robin its probe tuples across *columns* without changing the
//! output multiset. This experiment measures that claim's payoff. For
//! each Zipf exponent z ∈ {1.0, 1.4} it runs the same seeded band-join
//! twice on the chosen wall-clock backend:
//!
//! * **keyed** — skew-blind keyed routing: every tuple of a key lands in
//!   one grid cell, so the Zipf head piles onto one joiner;
//! * **split** — [`RoutingMode::KeyedHotSplit`]: the reshufflers'
//!   mergeable SpaceSaving sketches flag the head keys online and spread
//!   them across the grid.
//!
//! Every run is verified against a simulator replay through the
//! order-independent match digest — routing policy must never change
//! the join result. Reported per run:
//!
//! * wall-clock throughput on the live backend. **Caveat:** spreading a
//!   hot key is a *parallelism* win; it converts the hot joiner's serial
//!   match backlog into concurrent work on idle peers. The wall-clock
//!   gain therefore tracks the host's spare hardware threads — on a
//!   single-core CI runner both routings measure within noise of each
//!   other, because the total match work is identical by construction.
//! * **processing imbalance** `max(matches) / mean(matches)` over the
//!   joiner machines (1.0 = perfectly even, `J` = one joiner emitted
//!   everything) plus the same ratio over stored bytes. This is the
//!   hardware-independent signal: it measures where the work sat.
//! * the **modeled makespan** from the simulator running the same two
//!   routings under its cost model, where the `J` machines genuinely
//!   overlap in virtual time — what the wall-clock gain converges to as
//!   hardware parallelism becomes available.
//! * sketch skew ratio, hot-key count, and p50/p99 tuple latency (a hot
//!   joiner's queue backlog shows up directly in p99).
//!
//! Results go to `BENCH_skew[_smoke].json`; CI gates throughput via
//! `scripts/check_bench_regression.py --match-on name`.

use aoj_core::predicate::Predicate;
use aoj_core::RoutingMode;
use aoj_datagen::queries::{StreamItem, Workload};
use aoj_datagen::stream::interleave;
use aoj_datagen::zipf::ZipfSampler;
use aoj_operators::{BackendChoice, JoinSession, OperatorKind, RunReport, SessionBuilder};

use super::common::{banner, Table, SEED};

/// The Zipf exponents swept: the paper's moderate setting and a hard
/// head-heavy one where a single key carries ~20% of the stream.
pub const ZIPF_SWEEP: [f64; 2] = [1.0, 1.4];

const J: u32 = 4;

/// Zipf band-join workload at exponent `z` (key space 1 000, 96 B
/// tuples — the wall-clock benchmark's shape with a tunable head).
fn zipf_band_workload(z: f64, nr: usize, ns: usize, seed: u64) -> Workload {
    let mut zr = ZipfSampler::new(1_000, z, seed);
    let mut zs = ZipfSampler::new(1_000, z, seed ^ 0x5A5A);
    let item = |zs: &mut ZipfSampler| StreamItem {
        key: zs.next() as i64,
        aux: 0,
        bytes: 96,
    };
    Workload {
        name: "zipf-band-skew",
        predicate: Predicate::Band { width: 2 },
        r_items: (0..nr).map(|_| item(&mut zr)).collect(),
        s_items: (0..ns).map(|_| item(&mut zs)).collect(),
    }
}

fn session_builder(
    w: &Workload,
    n_arrivals: usize,
    backend: BackendChoice,
    routing: RoutingMode,
) -> SessionBuilder {
    SessionBuilder::new(J, OperatorKind::Dynamic)
        .with_predicate(w.predicate.clone())
        .with_workload(w.name)
        .with_seed(SEED)
        .with_backend(backend)
        .with_routing(routing)
        // Offline harness semantics: the whole stream is materialized up
        // front, so the source's queue must hold all of it and the
        // flow-control window (a liveness knob for open-ended sessions)
        // only adds credit-return stalls to the measurement.
        .with_window_copies(0)
        .with_queue_tuples(n_arrivals.max(1))
}

fn run_once(
    w: &Workload,
    arrivals: &[(aoj_core::tuple::Rel, StreamItem)],
    backend: BackendChoice,
    routing: RoutingMode,
) -> RunReport {
    let mut session = JoinSession::open(session_builder(w, arrivals.len(), backend, routing));
    session
        .push_batch(arrivals.iter().copied())
        .expect("fresh session rejected input");
    session.close()
}

/// A simulator run of the same workload under `routing` — virtual time,
/// so the `J` machines overlap perfectly and the modeled makespan shows
/// the parallel payoff of balanced placement independent of how many
/// hardware threads this host happens to have.
fn sim_run(
    w: &Workload,
    arrivals: &[(aoj_core::tuple::Rel, StreamItem)],
    routing: RoutingMode,
) -> RunReport {
    run_once(w, arrivals, BackendChoice::Sim, routing)
}

/// `max / mean` of a per-machine load gauge over the `J` joiner
/// machines: 1.0 is a perfectly balanced grid, `J` means one joiner
/// carries everything.
fn imbalance(r: &RunReport, load: impl Fn(&aoj_operators::MachineStats) -> u64) -> f64 {
    let j = r.final_mapping.j() as usize;
    let loads: Vec<u64> = r
        .machines
        .iter()
        .filter(|m| m.machine < j)
        .map(load)
        .collect();
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    *loads.iter().max().unwrap() as f64 / mean
}

/// Processing imbalance: `max(matches) / mean(matches)` over the joiner
/// machines — where the match work actually sat.
pub fn processing_imbalance(r: &RunReport) -> f64 {
    imbalance(r, |m| m.matches)
}

/// Storage imbalance: the same ratio over stored bytes.
pub fn storage_imbalance(r: &RunReport) -> f64 {
    imbalance(r, |m| m.stored_bytes)
}

/// Median-of-`reps` measurement of one `(z, routing)` cell on `backend`,
/// digest-verified against the simulator witness `sim`.
fn measure_cell(
    w: &Workload,
    arrivals: &[(aoj_core::tuple::Rel, StreamItem)],
    backend: BackendChoice,
    routing: RoutingMode,
    reps: usize,
    sim: &RunReport,
) -> RunReport {
    let mut runs: Vec<RunReport> = (0..reps.max(1))
        .map(|_| {
            let r = run_once(w, arrivals, backend, routing);
            assert_eq!(
                r.matches, sim.matches,
                "{} {routing:?}: match count diverged from the simulator witness",
                r.backend
            );
            assert_eq!(
                r.match_digest, sim.match_digest,
                "{} {routing:?}: join multiset diverged from the simulator witness \
                 — routing must be placement-only",
                r.backend
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| a.throughput.total_cmp(&b.throughput));
    runs.swap_remove(runs.len() / 2)
}

fn json_entry(name: &str, r: &RunReport, sim: &RunReport) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"backend\":\"{}\",\"exec_s\":{:.6},",
            "\"throughput_tps\":{:.1},\"matches\":{},\"imbalance\":{:.4},",
            "\"storage_imbalance\":{:.4},\"modeled_exec_s\":{:.6},",
            "\"skew_ratio\":{:.4},\"hot_keys\":{},\"p50_latency_us\":{},",
            "\"p99_latency_us\":{},\"network_bytes\":{}}}"
        ),
        name,
        r.backend,
        r.exec_secs(),
        r.throughput,
        r.matches,
        processing_imbalance(r),
        storage_imbalance(r),
        sim.exec_secs(),
        r.skew.skew_ratio,
        r.skew.hot_keys.len(),
        r.p50_latency_us,
        r.p99_latency_us,
        r.network_bytes,
    )
}

/// The `reproduce skew [--backend tcp] [--smoke]` entry point.
///
/// Smoke mode measures the one requested live backend (CI runs the two
/// backends as separate steps and gates both against the committed
/// baseline). Full mode sweeps **both** live backends into
/// `BENCH_skew.json` so that baseline has an entry for every
/// `(backend, run)` the smoke steps produce.
pub fn run_skew(backend: BackendChoice, smoke: bool) {
    assert!(
        matches!(backend, BackendChoice::Threaded | BackendChoice::Tcp),
        "run_skew measures a wall-clock backend; the simulator is its witness"
    );
    let tcp = backend == BackendChoice::Tcp;
    let backend_label = if tcp { "tcp" } else { "threaded" };
    let backends: &[(BackendChoice, &str)] = if smoke {
        if tcp {
            &[(BackendChoice::Tcp, "tcp")]
        } else {
            &[(BackendChoice::Threaded, "threaded")]
        }
    } else {
        &[
            (BackendChoice::Threaded, "threaded"),
            (BackendChoice::Tcp, "tcp"),
        ]
    };
    let (nr, ns) = if smoke {
        (600, 5_400)
    } else {
        (10_000, 10_000)
    };
    let reps = if smoke { 1 } else { 3 };
    banner(&format!(
        "skew handling ({}{}): Zipf band-join J={J}, keyed vs hot-split routing, \
         z in {ZIPF_SWEEP:?}",
        if smoke { backend_label } else { "threaded+tcp" },
        if smoke { ", smoke" } else { "" },
    ));

    let mut table = Table::new(&[
        "run",
        "backend",
        "routing",
        "tuples/s",
        "imbalance",
        "modeled (s)",
        "sketch p99/p50",
        "hot keys",
        "p99 lat (us)",
    ]);
    let mut entries: Vec<String> = Vec::new();
    for &z in &ZIPF_SWEEP {
        let w = zipf_band_workload(z, nr, ns, SEED);
        let arrivals = interleave(&w, SEED ^ 0x57AE);
        // The exactness witness doubles as the modeled keyed baseline:
        // same seed, same routing, virtual time.
        let sim_keyed = sim_run(&w, &arrivals, RoutingMode::Keyed);
        assert!(sim_keyed.matches > 0, "z={z}: workload produced no matches");
        let sim_split = sim_run(&w, &arrivals, RoutingMode::KeyedHotSplit);
        assert_eq!(
            sim_split.match_digest, sim_keyed.match_digest,
            "simulator: hot-split changed the join multiset"
        );

        for &(be, be_label) in backends {
            let mut cell = |routing: RoutingMode, tag: &str, sim: &RunReport| -> RunReport {
                let r = measure_cell(&w, &arrivals, be, routing, reps, sim);
                let name = format!("z{z}-{tag}");
                table.row(vec![
                    name.clone(),
                    be_label.to_string(),
                    tag.to_string(),
                    format!("{:.0}", r.throughput),
                    format!("{:.2}", processing_imbalance(&r)),
                    format!("{:.3}", sim.exec_secs()),
                    format!("{:.2}", r.skew.skew_ratio),
                    r.skew.hot_keys.len().to_string(),
                    r.p99_latency_us.to_string(),
                ]);
                entries.push(json_entry(&name, &r, sim));
                r
            };
            let keyed = cell(RoutingMode::Keyed, "keyed", &sim_keyed);
            let split = cell(RoutingMode::KeyedHotSplit, "split", &sim_split);
            let keyed_imb = processing_imbalance(&keyed);
            let split_imb = processing_imbalance(&split);
            println!(
                "  z={z} ({be_label}): processing imbalance {:.2} -> {:.2} ({:.1}x reduction), \
                 modeled makespan {:.3}s -> {:.3}s ({:+.1}% modeled, {:+.1}% measured \
                 on this host), p99 latency {} -> {} us; sketches flagged {} hot keys",
                keyed_imb,
                split_imb,
                keyed_imb / split_imb.max(1.0),
                sim_keyed.exec_secs(),
                sim_split.exec_secs(),
                100.0 * (sim_keyed.exec_secs() / sim_split.exec_secs() - 1.0),
                100.0 * (split.throughput / keyed.throughput - 1.0),
                keyed.p99_latency_us,
                split.p99_latency_us,
                split.skew.hot_keys.len(),
            );
        }
    }
    table.print();
    println!("  verified: every run's multiset digest matches the simulator witness");

    // Smoke runs (CI) write to a side file so they never clobber the
    // committed full baseline; the TCP smoke gets its own file so both
    // live-backend smoke steps can upload their results.
    let path = match (smoke, tcp) {
        (true, true) => "BENCH_skew_tcp_smoke.json",
        (true, false) => "BENCH_skew_smoke.json",
        (false, _) => "BENCH_skew.json",
    };
    let json = format!(
        "{{\"experiment\":\"skew\",\"backend\":\"{}\",\"smoke\":{},\"workload\":\"zipf-band-skew\",\
         \"j\":{},\"input_tuples\":{},\"runs\":[{}]}}\n",
        if smoke { backend_label } else { "threaded+tcp" },
        smoke,
        J,
        nr + ns,
        entries.join(","),
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
