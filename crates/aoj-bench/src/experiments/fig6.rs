//! **Figure 6** — ILF and execution time (§5.2), J = 64, 10 GB:
//!
//! * 6a: max per-machine ILF vs % of input processed (EQ5, Z4);
//! * 6b: final average ILF per machine + total cluster storage, all four
//!   queries;
//! * 6c: execution-time progress vs % of input processed (EQ5, Z4; SHJ on
//!   its own axis, two orders slower);
//! * 6d: total execution time, all four queries.

use aoj_datagen::queries::{bci, bnci, eq5, eq7, Workload};
use aoj_datagen::zipf::Skew;
use aoj_operators::{human_bytes, OperatorKind, RunReport};

use super::common::*;

const J: u32 = 64;

/// The four workloads of §5.2: equi-joins on the Z4-skewed database,
/// band joins on the uniform one.
fn workloads() -> Vec<Workload> {
    let skewed = db(10, Skew::Z4);
    let uniform = db(10, Skew::Z0);
    vec![eq5(&skewed), eq7(&skewed), bnci(&uniform), bci(&uniform)]
}

fn grid_operators() -> [OperatorKind; 3] {
    [
        OperatorKind::StaticMid,
        OperatorKind::Dynamic,
        OperatorKind::StaticOpt,
    ]
}

/// Fig. 6a: ILF growth over stream progress for EQ5 (all four operators).
pub fn run_fig6a() {
    banner("Fig 6a: max per-machine ILF vs % of EQ5 input processed (Z4, J=64)");
    let w = &workloads()[0];
    let arrivals = arrivals_of(w);
    let mut table = Table::new(&["% input", "SHJ", "StaticMid", "Dynamic", "StaticOpt"]);
    let mut series: Vec<(&str, RunReport)> = Vec::new();
    for kind in [
        OperatorKind::Shj,
        OperatorKind::StaticMid,
        OperatorKind::Dynamic,
        OperatorKind::StaticOpt,
    ] {
        series.push((
            kind.label(),
            run_operator(kind, w, &arrivals, J, BUDGET_64_MACHINES),
        ));
    }
    for pct in (10..=100).step_by(10) {
        let mut cells = vec![format!("{pct}%")];
        for (_, report) in &series {
            let ilf = report
                .sample_at_fraction(pct as f64 / 100.0)
                .map(|s| s.max_stored_bytes)
                .unwrap_or(0);
            cells.push(human_bytes(ilf));
        }
        table.row(cells);
    }
    table.print();
    println!("  paper shape: linear growth; SHJ and StaticMid grow several times faster than Dynamic/StaticOpt.");
}

/// Fig. 6b: final average ILF + total cluster storage, four queries.
pub fn run_fig6b() {
    banner("Fig 6b: final avg ILF per machine / total cluster storage (J=64)");
    let mut table = Table::new(&[
        "query",
        "StaticMid",
        "Dynamic",
        "StaticOpt",
        "SM/Dyn ilf ratio",
        "total:SM",
        "total:Dyn",
        "total:Opt",
    ]);
    for w in &workloads() {
        let arrivals = arrivals_of(w);
        let mut avg = Vec::new();
        let mut tot = Vec::new();
        for kind in grid_operators() {
            let report = run_operator(kind, w, &arrivals, J, BUDGET_64_MACHINES);
            avg.push(report.avg_ilf_bytes);
            tot.push(report.total_storage_bytes);
        }
        table.row(vec![
            w.name.to_string(),
            human_bytes(avg[0] as u64),
            human_bytes(avg[1] as u64),
            human_bytes(avg[2] as u64),
            format!("{:.1}x", avg[0] / avg[1].max(1.0)),
            human_bytes(tot[0]),
            human_bytes(tot[1]),
            human_bytes(tot[2]),
        ]);
    }
    table.print();
    println!("  paper shape: StaticMid's ILF is ~3-7x Dynamic's; Dynamic ~= StaticOpt.");
}

/// Fig. 6c: execution-time progress for EQ5.
pub fn run_fig6c() {
    banner("Fig 6c: execution time (virtual s) vs % of EQ5 input processed (Z4, J=64)");
    let w = &workloads()[0];
    let arrivals = arrivals_of(w);
    let mut table = Table::new(&[
        "% input",
        "StaticMid",
        "Dynamic",
        "StaticOpt",
        "SHJ (own axis)",
    ]);
    let mut series = Vec::new();
    for kind in [
        OperatorKind::StaticMid,
        OperatorKind::Dynamic,
        OperatorKind::StaticOpt,
        OperatorKind::Shj,
    ] {
        series.push(run_operator(kind, w, &arrivals, J, BUDGET_64_MACHINES));
    }
    for pct in (10..=100).step_by(10) {
        let mut cells = vec![format!("{pct}%")];
        for report in &series {
            let t = report
                .sample_at_fraction(pct as f64 / 100.0)
                .map(|s| s.at.as_secs_f64())
                .unwrap_or(0.0);
            cells.push(format!("{t:.3}"));
        }
        table.row(cells);
    }
    table.print();
    println!("  paper shape: linear progress; Dynamic ~= StaticOpt < StaticMid << SHJ (2 orders).");
}

/// Fig. 6d: total execution time, four queries.
pub fn run_fig6d() {
    banner("Fig 6d: total execution time in virtual seconds (J=64; BCI is the heavy one)");
    let mut table = Table::new(&["query", "StaticMid", "Dynamic", "StaticOpt", "SM/Dyn"]);
    for w in &workloads() {
        let arrivals = arrivals_of(w);
        let mut secs = Vec::new();
        for kind in grid_operators() {
            let report = run_operator(kind, w, &arrivals, J, BUDGET_64_MACHINES);
            secs.push(report.exec_secs());
        }
        table.row(vec![
            w.name.to_string(),
            format!("{:.3}", secs[0]),
            format!("{:.3}", secs[1]),
            format!("{:.3}", secs[2]),
            format!("{:.2}x", secs[0] / secs[1].max(1e-9)),
        ]);
    }
    table.print();
    println!("  paper shape: Dynamic ~= StaticOpt, up to ~4x faster than StaticMid;\n  the gap narrows on computation-bound BCI.");
}

/// All of Fig. 6.
pub fn run_fig6() {
    run_fig6a();
    run_fig6b();
    run_fig6c();
    run_fig6d();
}
