//! **Table 2** — skew resilience (§5.1): runtime of EQ5 and EQ7 on the
//! 10 GB dataset across skews Z0–Z4, 16 machines, for SHJ, Dynamic and
//! StaticMid. The paper's shape: SHJ wins slightly at Z0 (no
//! replication), collapses by orders of magnitude once skew overloads a
//! hash partition (starred = spilled to disk); Dynamic is flat across all
//! skews; StaticMid consistently pays its square grid's ILF.

use aoj_datagen::queries::{eq5, eq7};
use aoj_datagen::zipf::Skew;
use aoj_operators::OperatorKind;

use super::common::*;

/// Run Table 2 and print it.
pub fn run_table2() {
    banner("Table 2: runtime in virtual seconds (EQ5/EQ7, 10GB, J=16; * = overflow to disk)");
    let j = 16;
    let mut table = Table::new(&[
        "Zipf",
        "EQ5:SHJ",
        "EQ5:Dynamic",
        "EQ5:StaticMid",
        "EQ7:SHJ",
        "EQ7:Dynamic",
        "EQ7:StaticMid",
    ]);
    for skew in Skew::all() {
        let db = db(10, skew);
        let mut cells = vec![skew.label().to_string()];
        for query in [eq5, eq7] {
            let w = query(&db);
            let arrivals = arrivals_of(&w);
            for kind in [
                OperatorKind::Shj,
                OperatorKind::Dynamic,
                OperatorKind::StaticMid,
            ] {
                let report = run_operator(kind, &w, &arrivals, j, BUDGET_16_MACHINES);
                cells.push(secs_star(&report));
            }
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\n  paper shape: SHJ fastest at Z0/Z1, catastrophic (starred) from Z2-Z3;\n  \
         Dynamic flat across skews; StaticMid consistently slower, starring under pressure."
    );
}
