//! **Figure 7** — throughput, latency, and the optimal-mapping sweep
//! (§5.2), J = 64:
//!
//! * 7a: average operator throughput, four queries;
//! * 7b: average tuple latency (paced sources, grid operators);
//! * 7c/7d: final ILF and throughput as the *optimal* mapping moves from
//!   (1,64) to (8,8) — built by growing the smaller stream, as in the
//!   paper.

use aoj_core::ilf::optimal_mapping;
use aoj_datagen::queries::{bci, bnci, eq5, eq7, StreamItem, Workload};
use aoj_datagen::zipf::Skew;
use aoj_operators::{human_bytes, OperatorKind, SourcePacing};

use super::common::*;

const J: u32 = 64;

fn workloads() -> Vec<Workload> {
    let skewed = db(10, Skew::Z4);
    let uniform = db(10, Skew::Z0);
    vec![eq5(&skewed), eq7(&skewed), bnci(&uniform), bci(&uniform)]
}

/// Fig. 7a: average throughput (tuples per virtual second).
pub fn run_fig7a() {
    banner("Fig 7a: average operator throughput, tuples per virtual second (J=64)");
    let mut table = Table::new(&[
        "query",
        "SHJ",
        "StaticMid",
        "Dynamic",
        "StaticOpt",
        "Dyn/SM",
    ]);
    for w in &workloads() {
        let arrivals = arrivals_of(w);
        // SHJ partitions on the join key: equi-joins only (§5 "Operators").
        let shj = matches!(w.predicate, aoj_core::Predicate::Equi)
            .then(|| run_operator(OperatorKind::Shj, w, &arrivals, J, BUDGET_64_MACHINES));
        let mut tp = Vec::new();
        for kind in [
            OperatorKind::StaticMid,
            OperatorKind::Dynamic,
            OperatorKind::StaticOpt,
        ] {
            let report = run_operator(kind, w, &arrivals, J, BUDGET_64_MACHINES);
            tp.push(report.throughput);
        }
        table.row(vec![
            w.name.to_string(),
            shj.map_or("n/a".into(), |r| format!("{:.0}", r.throughput)),
            format!("{:.0}", tp[0]),
            format!("{:.0}", tp[1]),
            format!("{:.0}", tp[2]),
            format!("{:.2}x", tp[1] / tp[0].max(1e-9)),
        ]);
    }
    table.print();
    println!(
        "  paper shape: Dynamic ~= StaticOpt >= 2x StaticMid; SHJ far behind on skewed equi-joins."
    );
}

/// Fig. 7b: average tuple latency under a sustainable (paced) source.
pub fn run_fig7b() {
    banner("Fig 7b: average tuple latency in virtual ms (paced source, J=64)");
    let mut table = Table::new(&["query", "StaticMid", "Dynamic", "StaticOpt"]);
    for w in &workloads() {
        let arrivals = arrivals_of(w);
        // Pace at ~60% of the weakest operator's saturated throughput so
        // every operator runs underloaded (the paper measures latency at
        // sustainable rates).
        let sat = run_operator(OperatorKind::StaticMid, w, &arrivals, J, BUDGET_64_MACHINES);
        let rate = (sat.throughput * 0.6) as u64;
        let mut cells = vec![w.name.to_string()];
        for kind in [
            OperatorKind::StaticMid,
            OperatorKind::Dynamic,
            OperatorKind::StaticOpt,
        ] {
            let report = run_operator_paced(
                kind,
                w,
                &arrivals,
                J,
                BUDGET_64_MACHINES,
                SourcePacing::per_second(rate.max(1)),
            );
            cells.push(format!("{:.2}", report.avg_latency_us / 1000.0));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "  paper shape: latencies within tens of ms of each other; adaptivity costs only a few ms."
    );
}

/// The paper's 7c/7d sweep: grow the smaller (R) stream so the optimal
/// mapping walks (1,64) → (2,32) → (4,16) → (8,8).
fn sweep_workloads() -> Vec<(String, Workload)> {
    let base = db(10, Skew::Z0);
    let w = eq5(&base);
    let s_total = w.s_items.len();
    let mut out = Vec::new();
    for (label, r_frac_of_s) in [
        ("(1,64)", 1.0 / 64.0),
        ("(2,32)", 1.0 / 16.0),
        ("(4,16)", 1.0 / 4.0),
        ("(8,8)", 1.0),
    ] {
        let target_r = ((s_total as f64) * r_frac_of_s) as usize;
        // Replicate/truncate the R side to the target cardinality, keys
        // cycling over the supplier domain.
        let r_items: Vec<StreamItem> = (0..target_r)
            .map(|i| w.r_items[i % w.r_items.len().max(1)])
            .collect();
        let wl = Workload {
            name: "EQ5-sweep",
            predicate: w.predicate.clone(),
            r_items,
            s_items: w.s_items.clone(),
        };
        // Confirm the intended optimum.
        let (rb, sb) = (
            wl.r_items.iter().map(|i| i.bytes as u64).sum::<u64>(),
            wl.s_items.iter().map(|i| i.bytes as u64).sum::<u64>(),
        );
        let opt = optimal_mapping(J, rb, sb);
        out.push((format!("{label} opt=({},{})", opt.n, opt.m), wl));
    }
    out
}

/// Fig. 7c: final ILF vs the position of the optimal mapping.
pub fn run_fig7c() {
    banner("Fig 7c: final avg ILF as the optimal mapping approaches (8,8) (J=64)");
    let mut table = Table::new(&["optimal", "StaticMid", "Dynamic", "StaticOpt", "SM/Dyn"]);
    for (label, w) in sweep_workloads() {
        let arrivals = arrivals_of(&w);
        let mut ilf = Vec::new();
        for kind in [
            OperatorKind::StaticMid,
            OperatorKind::Dynamic,
            OperatorKind::StaticOpt,
        ] {
            let report = run_operator(kind, &w, &arrivals, J, u64::MAX);
            ilf.push(report.avg_ilf_bytes);
        }
        table.row(vec![
            label,
            human_bytes(ilf[0] as u64),
            human_bytes(ilf[1] as u64),
            human_bytes(ilf[2] as u64),
            format!("{:.2}x", ilf[0] / ilf[1].max(1.0)),
        ]);
    }
    table.print();
    println!(
        "  paper shape: the StaticMid/Dynamic ILF gap shrinks to ~1x as the optimum reaches (8,8)."
    );
}

/// Fig. 7d: throughput across the same sweep.
pub fn run_fig7d() {
    banner("Fig 7d: throughput as the optimal mapping approaches (8,8) (J=64)");
    let mut table = Table::new(&["optimal", "StaticMid", "Dynamic", "StaticOpt", "Dyn/SM"]);
    for (label, w) in sweep_workloads() {
        let arrivals = arrivals_of(&w);
        let mut tp = Vec::new();
        for kind in [
            OperatorKind::StaticMid,
            OperatorKind::Dynamic,
            OperatorKind::StaticOpt,
        ] {
            let report = run_operator(kind, &w, &arrivals, J, u64::MAX);
            tp.push(report.throughput);
        }
        table.row(vec![
            label,
            format!("{:.0}", tp[0]),
            format!("{:.0}", tp[1]),
            format!("{:.0}", tp[2]),
            format!("{:.2}x", tp[1] / tp[0].max(1e-9)),
        ]);
    }
    table.print();
    println!("  paper shape: the performance gap closes as StaticMid's guess becomes optimal;\n  at (8,8) Dynamic pays a small adaptivity tax.");
}

/// All of Fig. 7.
pub fn run_fig7() {
    run_fig7a();
    run_fig7b();
    run_fig7c();
    run_fig7d();
}
