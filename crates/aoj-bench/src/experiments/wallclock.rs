//! The wall-clock benchmark: the operator on real OS threads.
//!
//! Everything else in `aoj-bench` measures virtual time on the
//! deterministic simulator. This experiment runs a Zipf-skewed band-join
//! through `aoj-runtime`'s threaded backend — one worker thread per
//! machine (`J + 1` threads for `J` joiners) — and reports *real*
//! numbers: wall-clock throughput in tuples/s, p50/p99 match latency,
//! and bytes moved. It then replays the identical seeded workload on the
//! simulator backend and verifies the two backends emitted the **same
//! join result multiset** — the cross-backend exactness guarantee the
//! epoch protocol provides.

use aoj_core::predicate::Predicate;
use aoj_datagen::queries::{StreamItem, Workload};
use aoj_datagen::stream::interleave;
use aoj_datagen::zipf::ZipfSampler;
use aoj_operators::{human_bytes, run, BackendChoice, OperatorKind, RunConfig, RunReport};

use super::common::{banner, SEED};

/// Zipf-skewed band-join workload: `|r.key − s.key| ≤ 2` over a hot key
/// head (z = 1, the paper's Z4 setting).
fn zipf_band_workload(nr: usize, ns: usize, key_space: u64, seed: u64) -> Workload {
    let mut zr = ZipfSampler::new(key_space, 1.0, seed);
    let mut zs = ZipfSampler::new(key_space, 1.0, seed ^ 0x5A5A);
    let item = |z: &mut ZipfSampler| StreamItem {
        key: z.next() as i64,
        aux: 0,
        bytes: 96,
    };
    Workload {
        name: "zipf-band",
        predicate: Predicate::Band { width: 2 },
        r_items: (0..nr).map(|_| item(&mut zr)).collect(),
        s_items: (0..ns).map(|_| item(&mut zs)).collect(),
    }
}

/// One threaded + one simulated run of the same seeded workload.
/// Returns `(threaded, sim)`; panics if their join outputs diverge.
pub fn run_wallclock_pair(j: u32, nr: usize, ns: usize) -> (RunReport, RunReport) {
    let w = zipf_band_workload(nr, ns, 1_000, SEED);
    let arrivals = interleave(&w, SEED ^ 0x57AE);
    let mut cfg = RunConfig::new(j, OperatorKind::Dynamic);
    cfg.collect_matches = true;

    let threaded = run(
        &arrivals,
        &w.predicate,
        w.name,
        &cfg.clone().with_backend(BackendChoice::Threaded),
    );
    let sim = run(
        &arrivals,
        &w.predicate,
        w.name,
        &cfg.with_backend(BackendChoice::Sim),
    );
    assert_eq!(
        threaded.match_pairs, sim.match_pairs,
        "threaded and simulated join outputs diverged"
    );
    (threaded, sim)
}

/// The `reproduce wallclock` entry point.
pub fn run_wallclock() {
    let j = 4u32;
    let (nr, ns) = (2_000, 20_000);
    banner(&format!(
        "wall-clock run: Dynamic, Zipf(z=1) band-join, J={j} ({} worker threads)",
        j + 1
    ));
    let (threaded, sim) = run_wallclock_pair(j, nr, ns);

    println!("  {}", threaded.wallclock_summary());
    println!("  {}", sim.wallclock_summary());
    println!();
    println!(
        "  threaded: {} tuples in {:.3}s wall clock = {:.0} tuples/s",
        threaded.input_tuples,
        threaded.exec_secs(),
        threaded.throughput
    );
    println!(
        "  match latency (wall): p50={}us p99={}us max={}us over {} matches",
        threaded.p50_latency_us, threaded.p99_latency_us, threaded.max_latency_us, threaded.matches
    );
    println!(
        "  bytes moved: {} network ({} messages), {} migration state, {} migrations",
        human_bytes(threaded.network_bytes),
        threaded.network_messages,
        human_bytes(threaded.migration_bytes),
        threaded.migrations
    );
    println!(
        "  verified: both backends emitted the identical multiset of {} join pairs",
        threaded.matches
    );
}
