//! The wall-clock benchmark: the operator on real OS threads, swept
//! across data-plane batch sizes.
//!
//! Everything else in `aoj-bench` measures virtual time on the
//! deterministic simulator. This experiment runs a Zipf-skewed band-join
//! through `aoj-runtime`'s threaded backend — one worker thread per
//! machine (`J + 1` threads for `J` joiners) — and reports *real*
//! numbers: wall-clock throughput in tuples/s, p50/p99 match latency,
//! and bytes moved. For every batch size in the sweep it replays the
//! identical seeded workload on the simulator backend and verifies the
//! two backends emitted the **same join result multiset** — the
//! cross-backend exactness guarantee the epoch protocol provides.
//!
//! Results go to stdout and to `BENCH_wallclock.json` (tuples/s, p50,
//! p99 per batch size and backend) so the perf trajectory is tracked
//! across PRs; CI fails if the recorded throughput regresses more than
//! the threshold in `scripts/check_bench_regression.py`.

use aoj_core::predicate::Predicate;
use aoj_datagen::queries::{StreamItem, Workload};
use aoj_datagen::stream::interleave;
use aoj_datagen::zipf::ZipfSampler;
use aoj_operators::{human_bytes, run, BackendChoice, OperatorKind, RunConfig, RunReport};

use super::common::{banner, SEED};

/// The default `--batch` sweep.
pub const DEFAULT_SWEEP: [usize; 4] = [1, 16, 64, 256];
/// The CI smoke sweep: per-tuple baseline + the default batch size.
pub const SMOKE_SWEEP: [usize; 2] = [1, 64];
/// The TCP backend sweep: one entry at the default batch size. Every
/// run pays `J + 1` process spawns and real socket traffic, so the
/// sweep stays a smoke-sized sanity point rather than a full curve.
pub const TCP_SWEEP: [usize; 1] = [64];

/// Zipf-skewed band-join workload: `|r.key − s.key| ≤ 2` over a hot key
/// head (z = 1, the paper's Z4 setting).
fn zipf_band_workload(nr: usize, ns: usize, key_space: u64, seed: u64) -> Workload {
    let mut zr = ZipfSampler::new(key_space, 1.0, seed);
    let mut zs = ZipfSampler::new(key_space, 1.0, seed ^ 0x5A5A);
    let item = |z: &mut ZipfSampler| StreamItem {
        key: z.next() as i64,
        aux: 0,
        bytes: 96,
    };
    Workload {
        name: "zipf-band",
        predicate: Predicate::Band { width: 2 },
        r_items: (0..nr).map(|_| item(&mut zr)).collect(),
        s_items: (0..ns).map(|_| item(&mut zs)).collect(),
    }
}

/// Median-of-`reps` wall-clock measurement on `backend` (throughput is
/// jittery — one run can swing ±15% on a loaded machine; the median of
/// three is the standard stabiliser), plus one deterministic sim run.
/// Every wall-clock repeat is verified against the sim via the
/// order-independent match digest (same count, same multiset hash).
pub fn measure_pair(
    backend: BackendChoice,
    j: u32,
    nr: usize,
    ns: usize,
    batch_tuples: usize,
    reps: usize,
) -> (RunReport, RunReport) {
    let w = zipf_band_workload(nr, ns, 1_000, SEED);
    let arrivals = interleave(&w, SEED ^ 0x57AE);
    // No pair collection: shipping every match identity to the
    // coordinator costs an order of magnitude more traffic than the join
    // itself (~59MB of pair ids vs ~4.7MB of data at this scale) and was
    // the dominant cost of the TCP sweep. The always-on `MatchDigest`
    // witnesses the same multiset equality without moving the pairs;
    // `backend_equivalence` keeps the bit-for-bit `collect_matches` path
    // honest.
    let mut cfg = RunConfig::new(j, OperatorKind::Dynamic).with_batch_tuples(batch_tuples);
    cfg.collect_matches = false;
    let sim = run(
        &arrivals,
        &w.predicate,
        w.name,
        &cfg.clone().with_backend(BackendChoice::Sim),
    );
    let mut runs: Vec<RunReport> = (0..reps.max(1))
        .map(|_| {
            let r = run(
                &arrivals,
                &w.predicate,
                w.name,
                &cfg.clone().with_backend(backend),
            );
            assert_eq!(
                r.matches, sim.matches,
                "{} and simulated match counts diverged at batch_tuples={batch_tuples}",
                r.backend
            );
            assert_eq!(
                r.match_digest, sim.match_digest,
                "{} and simulated join multisets diverged at batch_tuples={batch_tuples}",
                r.backend
            );
            r
        })
        .collect();
    runs.sort_by(|a, b| a.throughput.total_cmp(&b.throughput));
    let measured = runs.swap_remove(runs.len() / 2);
    (measured, sim)
}

fn json_entry(batch: usize, r: &RunReport) -> String {
    format!(
        concat!(
            "{{\"batch_tuples\":{},\"backend\":\"{}\",\"exec_s\":{:.6},",
            "\"throughput_tps\":{:.1},\"p50_latency_us\":{},\"p99_latency_us\":{},",
            "\"matches\":{},\"network_messages\":{},\"network_bytes\":{}}}"
        ),
        batch,
        r.backend,
        r.exec_secs(),
        r.throughput,
        r.p50_latency_us,
        r.p99_latency_us,
        r.matches,
        r.network_messages,
        r.network_bytes,
    )
}

/// The `reproduce wallclock [--backend tcp] [--smoke] [--batch N,...]`
/// entry point: sweep the data-plane batch size on the chosen
/// wall-clock backend (threaded by default, multi-process TCP with
/// `--backend tcp`) and record the perf trajectory. The simulator
/// replays every point as the exactness witness.
pub fn run_wallclock(backend: BackendChoice, batch_sweep: &[usize], smoke: bool) {
    assert!(
        matches!(backend, BackendChoice::Threaded | BackendChoice::Tcp),
        "run_wallclock measures a wall-clock backend; the simulator is its witness"
    );
    let tcp = backend == BackendChoice::Tcp;
    let j = 4u32;
    let (nr, ns) = (2_000, 20_000);
    let sweep: Vec<usize> = if !batch_sweep.is_empty() {
        batch_sweep.to_vec()
    } else if tcp {
        TCP_SWEEP.to_vec()
    } else if smoke {
        SMOKE_SWEEP.to_vec()
    } else {
        DEFAULT_SWEEP.to_vec()
    };
    banner(&format!(
        "wall-clock batch sweep: Dynamic, Zipf(z=1) band-join, J={j} ({}), batch sizes {sweep:?}",
        if tcp {
            format!("{} worker processes over loopback TCP", j + 1)
        } else {
            format!("{} worker threads", j + 1)
        }
    ));
    // Warm-up: the first wall-clock run pays cold caches and
    // thread/process-spawn jitter, so throw away one pass at the
    // default batch size before measuring (no simulator replay, no
    // verification — the measured pairs below do that).
    {
        let w = zipf_band_workload(nr, ns, 1_000, SEED);
        let arrivals = interleave(&w, SEED ^ 0x57AE);
        let cfg = RunConfig::new(j, OperatorKind::Dynamic)
            .with_batch_tuples(64)
            .with_backend(backend);
        let _ = run(&arrivals, &w.predicate, w.name, &cfg);
    }

    let mut entries: Vec<String> = Vec::new();
    let mut default_batch_tps: Option<f64> = None;
    for &batch in &sweep {
        let (measured, sim) = measure_pair(backend, j, nr, ns, batch, 3);
        println!("  batch={batch}");
        println!("    {}", measured.wallclock_summary());
        println!("    {}", sim.wallclock_summary());
        println!(
            "    {}: {:.0} tuples/s, p50={}us p99={}us, {} over {} messages",
            measured.backend,
            measured.throughput,
            measured.p50_latency_us,
            measured.p99_latency_us,
            human_bytes(measured.network_bytes),
            measured.network_messages,
        );
        if batch == 64 {
            default_batch_tps = Some(measured.throughput);
        }
        entries.push(json_entry(batch, &measured));
        // The committed sim curve comes from the threaded sweep; a TCP
        // run uses the simulator purely as its exactness witness.
        if !tcp {
            entries.push(json_entry(batch, &sim));
        }
    }
    if let Some(tps) = default_batch_tps {
        if tcp {
            println!("  default batch (64): {tps:.0} tuples/s wall-clock over loopback TCP");
        } else {
            println!(
                "  default batch (64): {tps:.0} tuples/s wall-clock \
                 (PR 2 per-tuple baseline: ~216k tuples/s)"
            );
        }
    }
    println!(
        "  verified: {} and sim multisets identical at every batch size",
        if tcp { "tcp" } else { "threaded" }
    );

    // Smoke runs (CI, quick local checks) write to a side file so they
    // never clobber the committed full-sweep baseline the CI regression
    // gate compares against; the TCP smoke gets its own file so the two
    // wall-clock smoke steps can upload both. Full runs merge into the
    // baseline, preserving the entries of backends not re-measured.
    let (path, final_entries) = if smoke {
        let path = if tcp {
            "BENCH_wallclock_tcp_smoke.json"
        } else {
            "BENCH_wallclock_smoke.json"
        };
        (path, entries)
    } else {
        let replaced: &[&str] = if tcp { &["tcp"] } else { &["threaded", "sim"] };
        let mut kept = kept_baseline_entries("BENCH_wallclock.json", replaced);
        kept.extend(entries);
        ("BENCH_wallclock.json", kept)
    };
    let json = format!(
        "{{\"experiment\":\"wallclock\",\"smoke\":{},\"workload\":\"zipf-band\",\"j\":{},\
         \"input_tuples\":{},\"runs\":[{}]}}\n",
        smoke,
        j,
        nr + ns,
        final_entries.join(",")
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}

/// Baseline entries for backends this run did *not* re-measure: a
/// `--backend tcp` sweep must not clobber the committed threaded/sim
/// curve, and a threaded sweep must not drop the tcp point. The file is
/// this module's own single-line output — flat objects, no nesting — so
/// splitting on the object boundary is exact.
fn kept_baseline_entries(path: &str, replaced: &[&str]) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(start) = text.find("\"runs\":[") else {
        return Vec::new();
    };
    let body = &text[start + "\"runs\":[".len()..];
    let Some(end) = body.rfind(']') else {
        return Vec::new();
    };
    if body[..end].trim().is_empty() {
        return Vec::new();
    }
    body[..end]
        .split("},{")
        .map(|e| format!("{{{}}}", e.trim_matches(|c| c == '{' || c == '}')))
        .filter(|e| {
            !replaced
                .iter()
                .any(|b| e.contains(&format!("\"backend\":\"{b}\"")))
        })
        .collect()
}
