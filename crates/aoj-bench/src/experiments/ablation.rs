//! Ablations of the design choices DESIGN.md calls out:
//!
//! * locality-aware vs naive (full-repartition) migration volume;
//! * the ε optimality/communication trade-off of Theorem 4.2;
//! * elastic expansion (Theorem 4.3) — cost vs capacity trajectory;
//! * arbitrary `J` via group decomposition (§4.2.2) — storage balance and
//!   work distribution.

use aoj_core::decision::DecisionConfig;
use aoj_core::elastic::{plan_expansion, should_expand};
use aoj_core::groups::GroupSet;
use aoj_core::ilf::{ilf, optimal_ilf};
use aoj_core::mapping::{GridAssignment, Mapping, Step};
use aoj_core::migration::{naive_moved_tuples, plan_step};
use aoj_core::ticket::{mix64, partition, TicketGen};
use aoj_core::tuple::{Rel, Tuple};
use aoj_datagen::queries::fluct_join;
use aoj_datagen::stream::fluctuating;
use aoj_datagen::zipf::Skew;
use aoj_operators::{human_bytes, OperatorKind, RunConfig, SourcePacing};

use super::common::*;

/// Locality-aware (Lemma 4.4) vs naive migration volume, across grids.
pub fn run_ablation_migration() {
    banner("Ablation: locality-aware (Lemma 4.4) vs naive full-repartition migration volume");
    let mut table = Table::new(&[
        "from",
        "to",
        "state/joiner",
        "locality (tuples)",
        "naive (tuples)",
        "saving",
    ]);
    for (n, m) in [(8u32, 8u32), (4, 16), (16, 4), (8, 2)] {
        let mapping = Mapping::new(n, m);
        let assign = GridAssignment::initial(mapping);
        let step = if n >= 2 {
            Step::HalveRows
        } else {
            Step::HalveCols
        };
        let plan = plan_step(&assign, step);
        // Build balanced synthetic state: `per` tuples of each relation
        // per partition.
        let per = 1_000u64;
        let mut gen = TicketGen::new(7);
        let mut per_machine = vec![(0u64, 0u64); mapping.j() as usize];
        let mut locality = 0u64;
        for i in 0..per * mapping.n as u64 {
            let t = Tuple::new(Rel::R, i, 0, gen.next());
            let row = partition(t.ticket, mapping.n);
            for mach in assign.machines_for_row(row) {
                per_machine[mach].0 += 1;
                if plan.specs[mach].is_migrated(&t) {
                    locality += 1;
                }
            }
        }
        for i in 0..per * mapping.m as u64 {
            let t = Tuple::new(Rel::S, i, 0, gen.next());
            let col = partition(t.ticket, mapping.m);
            for mach in assign.machines_for_col(col) {
                per_machine[mach].1 += 1;
                if plan.specs[mach].is_migrated(&t) {
                    locality += 1;
                }
            }
        }
        let naive = naive_moved_tuples(&assign, step, &per_machine);
        let state = per_machine[0].0 + per_machine[0].1;
        table.row(vec![
            format!("({n},{m})"),
            format!("({},{})", plan.to.n, plan.to.m),
            state.to_string(),
            locality.to_string(),
            naive.to_string(),
            format!("{:.1}x", naive as f64 / locality.max(1) as f64),
        ]);
    }
    table.print();
    println!(
        "  the exchange moves only the coarsening relation; naive reshuffling moves ~everything."
    );
}

/// The ε trade-off (Theorem 4.2): measured worst ILF ratio and migration
/// traffic across ε.
pub fn run_ablation_epsilon() {
    banner("Ablation: epsilon trade-off (Theorem 4.2): ratio bound (3+2e)/(3+e), cost O(1/e)");
    let d = db(8, Skew::Z0);
    let w = fluct_join(&d);
    let arrivals = fluctuating(&w, 4, SEED);
    let mut table = Table::new(&[
        "epsilon",
        "bound",
        "measured max ILF/ILF*",
        "migrations",
        "migration bytes",
    ]);
    // Pace below capacity: Theorem 4.2's tracking bound presumes arrivals
    // are flow-controlled relative to processing (§4.3.2).
    let sat = run_operator(OperatorKind::Dynamic, &w, &arrivals, 64, u64::MAX);
    let pace = SourcePacing::per_second((sat.throughput * 0.5) as u64);
    for (num, den) in [(1u32, 1u32), (1, 2), (1, 4), (1, 8)] {
        let mut cfg = RunConfig::new(64, OperatorKind::Dynamic);
        let total_bytes: u64 = arrivals.iter().map(|(_, i)| i.bytes as u64).sum();
        cfg.decision = DecisionConfig {
            epsilon_num: num,
            epsilon_den: den,
            min_total: total_bytes / 100,
        };
        cfg.pacing = pace;
        let report = aoj_operators::run(&arrivals, &w.predicate, w.name, &cfg);
        let warmup = arrivals.len() as u64 / 20;
        let cfg_eps = cfg.decision;
        table.row(vec![
            format!("{}/{}", num, den),
            format!("{:.4}", cfg_eps.competitive_ratio()),
            format!("{:.4}", report.max_competitive_ratio(warmup)),
            report.migrations.to_string(),
            human_bytes(report.migration_bytes),
        ]);
    }
    table.print();
    println!(
        "  smaller epsilon: tighter tracking (lower measured ratio), more migrations/traffic."
    );
}

/// Elastic expansion (Theorem 4.3): simulate a growing stream against a
/// per-joiner capacity target, expanding 4x at checkpoints.
pub fn run_ablation_elastic() {
    banner("Ablation: elastic expansion (Fig 5 / Theorem 4.3) - state-level simulation");
    let capacity_m = 4_000u64; // per-joiner tuple target
    let mut assign = GridAssignment::initial(Mapping::new(2, 2));
    let mut gen = TicketGen::new(99);
    let mut state: Vec<Vec<Tuple>> = vec![Vec::new(); 4];
    let mut total_sent = 0u64;
    let mut total_tuples = 0u64;
    let mut total_copies = 0u64;
    let mut table = Table::new(&[
        "arrivals",
        "J",
        "mapping",
        "max/joiner",
        "expansion cost (tuples)",
    ]);
    for chunk in 0..48u64 {
        // Stream in a chunk of balanced R/S tuples; expansion checkpoints
        // come between chunks (the paper checks at migration checkpoints).
        for i in 0..1_000u64 {
            let seq = chunk * 1_000 + i;
            let rel = if seq % 2 == 0 { Rel::R } else { Rel::S };
            let t = Tuple::new(rel, seq, 0, gen.next());
            total_tuples += 1;
            let mp = assign.mapping();
            match rel {
                Rel::R => {
                    let row = partition(t.ticket, mp.n);
                    for mach in assign.machines_for_row(row).collect::<Vec<_>>() {
                        state[mach].push(t);
                        total_copies += 1;
                    }
                }
                Rel::S => {
                    let col = partition(t.ticket, mp.m);
                    for mach in assign.machines_for_col(col).collect::<Vec<_>>() {
                        state[mach].push(t);
                        total_copies += 1;
                    }
                }
            }
        }
        let max_per = state.iter().map(|s| s.len() as u64).max().unwrap_or(0);
        let mut cost = 0u64;
        if should_expand(max_per, capacity_m) {
            let plan = plan_expansion(&assign);
            let old_j = state.len();
            let mut next: Vec<Vec<Tuple>> = vec![Vec::new(); old_j * 4];
            for (k, tuples) in state.iter().enumerate() {
                let spec = plan.specs[k];
                for t in tuples {
                    let d = spec.destinations(t);
                    cost += d.sends() as u64;
                    if d.keep {
                        next[k].push(*t);
                    }
                    if d.to_01 {
                        next[spec.children[0]].push(*t);
                    }
                    if d.to_10 {
                        next[spec.children[1]].push(*t);
                    }
                    if d.to_11 {
                        next[spec.children[2]].push(*t);
                    }
                }
            }
            state = next;
            assign.apply_expansion();
            total_sent += cost;
        }
        let mp = assign.mapping();
        if cost > 0 || chunk % 8 == 7 {
            table.row(vec![
                total_tuples.to_string(),
                mp.j().to_string(),
                format!("({},{})", mp.n, mp.m),
                state.iter().map(|s| s.len()).max().unwrap_or(0).to_string(),
                cost.to_string(),
            ]);
        }
    }
    table.print();
    // Theorem 4.3's amortised charge is per unit of *received joiner
    // input* (time units are max(dR/n, dS/m) per joiner, summed = routed
    // copies), so the right denominator is copies, not raw arrivals.
    println!(
        "  expansion traffic {} tuples / {} routed copies = {:.2} per unit of joiner input\n  \
         (Theorem 4.3 amortised bound at e=1: 8 per unit)",
        total_sent,
        total_copies,
        total_sent as f64 / total_copies as f64,
    );
}

/// Arbitrary `J` via groups (§4.2.2): storage proportionality and work
/// balance for J = 20 = 16 + 4.
pub fn run_ablation_groups() {
    banner("Ablation: arbitrary J via power-of-two groups (J=20=16+4, Fig 4)");
    let j = 20u32;
    let g = GroupSet::decompose(j);
    println!(
        "  groups: {:?}",
        (0..g.count()).map(|i| g.size(i)).collect::<Vec<_>>()
    );
    // Storage proportionality.
    let n = 400_000u64;
    let mut stored = vec![0u64; g.count()];
    for i in 0..n {
        stored[g.storage_group(mix64(i))] += 1;
    }
    let mut table = Table::new(&["group", "machines", "stored share", "expected"]);
    for (i, &stored_in_group) in stored.iter().enumerate() {
        table.row(vec![
            i.to_string(),
            g.size(i).to_string(),
            format!("{:.3}", stored_in_group as f64 / n as f64),
            format!("{:.3}", g.size(i) as f64 / j as f64),
        ]);
    }
    table.print();
    // ILF competitiveness: the grouped scheme's storage vs a true power of
    // two (the 3.75 bound of §4.2.2).
    let (r, s) = (100_000u64, 100_000u64);
    let maps = g.optimal_mappings(r, s);
    let mut worst_group_ilf: f64 = 0.0;
    for (i, mp) in maps.iter().enumerate() {
        // Each group stores its proportional share.
        let share = g.size(i) as f64 / j as f64;
        let gr = (r as f64 * share) as u64;
        let gs = (s as f64 * share) as u64;
        worst_group_ilf = worst_group_ilf.max(ilf(gr, gs, *mp));
    }
    let ideal = optimal_ilf(32, r, s).min(optimal_ilf(16, r, s));
    println!(
        "  worst per-group ILF {:.0} vs ideal-power-of-two {:.0} => ratio {:.2} (bound 3.75)",
        worst_group_ilf,
        ideal,
        worst_group_ilf / ideal
    );
    // End-to-end: the full grouped dataflow operator on the EQ5 workload,
    // exact output included.
    let d = db(2, Skew::Z0);
    let w = aoj_datagen::queries::eq5(&d);
    let arrivals = arrivals_of(&w);
    let expected = aoj_datagen::queries::reference_match_count(&w);
    let report = aoj_operators::run_grouped(&arrivals, &w.predicate, 20, SEED);
    println!(
        "  dataflow run on J=20: {} matches (reference {}), exec {:.3}s, per-group stored {:?}",
        report.matches,
        expected,
        report.exec_time.as_secs_f64(),
        report
            .stored_per_group
            .iter()
            .map(|b| human_bytes(*b))
            .collect::<Vec<_>>(),
    );
    assert_eq!(report.matches, expected, "grouped operator must be exact");
}

/// Blocking (Flux-style) vs non-blocking (Alg. 3) migration: same output,
/// radically different latency and throughput behaviour during
/// migrations — what the eventually-consistent protocol buys (§4.3).
pub fn run_ablation_blocking() {
    banner("Ablation: blocking (Flux-style) vs non-blocking (Alg. 3) migrations");
    let d = db(8, Skew::Z0);
    let w = fluct_join(&d);
    let arrivals = fluctuating(&w, 4, SEED);
    // Pace at a sustainable rate so latency reflects protocol behaviour,
    // not raw queueing.
    let sat = run_operator(OperatorKind::Dynamic, &w, &arrivals, 64, u64::MAX);
    let pace = SourcePacing::per_second((sat.throughput * 0.5) as u64);
    let mut table = Table::new(&[
        "protocol",
        "matches",
        "migrations",
        "avg latency (ms)",
        "max latency (ms)",
        "exec (s)",
    ]);
    for blocking in [false, true] {
        let mut cfg = RunConfig::new(64, OperatorKind::Dynamic);
        cfg.decision = warmup_decision(&arrivals);
        cfg.pacing = pace;
        cfg.blocking_migrations = blocking;
        let report = aoj_operators::run(&arrivals, &w.predicate, w.name, &cfg);
        table.row(vec![
            if blocking {
                "blocking".into()
            } else {
                "non-blocking (Alg 3)".to_string()
            },
            report.matches.to_string(),
            report.migrations.to_string(),
            format!("{:.2}", report.avg_latency_us / 1000.0),
            format!("{:.2}", report.max_latency_us as f64 / 1000.0),
            format!("{:.3}", report.exec_secs()),
        ]);
    }
    table.print();
    println!(
        "  identical output; the blocking baseline stalls every tuple that arrives\n  \
         mid-migration, inflating both average and worst-case latency. The gap grows\n  \
         with state size: real deployments relocate GBs, not the scaled-down MBs here."
    );
}

/// All ablations.
pub fn run_ablations() {
    run_ablation_migration();
    run_ablation_epsilon();
    run_ablation_blocking();
    run_ablation_elastic();
    run_ablation_groups();
}
