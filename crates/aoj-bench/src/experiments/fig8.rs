//! **Figure 8** — weak scalability and data dynamics (§5.3, §5.4):
//!
//! * 8a/8b: weak scaling (data and machines doubled together), in-memory
//!   and out-of-core, for EQ5, EQ7 and BNCI: execution time and
//!   throughput;
//! * 8c: the fluctuation experiment — `|R|/|S|` alternates between `k`
//!   and `1/k`; the `ILF/ILF*` competitive ratio must stay ≤ 1.25;
//! * 8d: execution-time progress under fluctuation stays linear
//!   (migration costs amortised).

use aoj_datagen::queries::{bnci, eq5, eq7, fluct_join, Workload};
use aoj_datagen::stream::fluctuating;
use aoj_datagen::zipf::Skew;
use aoj_operators::{OperatorKind, RunReport, SourcePacing};

use aoj_datagen::tpch::{ScaledGb, TpchDb};

use super::common::*;

/// The weak-scaling ladders: (simulated GB, machines, row reduction).
/// The out-of-core ladder reuses the in-memory tuple counts (its reduction
/// is 8x larger against 8x the GB) but squeezes the RAM budget instead —
/// what distinguishes the two regimes is memory pressure, not row count.
const IN_MEMORY_LADDER: [(u32, u32, u32); 4] = [
    (10, 16, 1000),
    (20, 32, 1000),
    (40, 64, 1000),
    (80, 128, 1000),
];
const OUT_OF_CORE_LADDER: [(u32, u32, u32); 4] = [
    (80, 16, 8000),
    (160, 32, 8000),
    (320, 64, 8000),
    (640, 128, 8000),
];

fn scaling_workloads(gb: u32, reduction: u32) -> Vec<Workload> {
    let d = TpchDb::generate(ScaledGb { gb, reduction }, Skew::Z0, SEED);
    vec![eq5(&d), eq7(&d), bnci(&d)]
}

fn run_ladder(ladder: &[(u32, u32, u32)], in_memory: bool) -> Vec<(String, Vec<RunReport>)> {
    let mut rows = Vec::new();
    for &(gb, j, reduction) in ladder {
        let mut reports = Vec::new();
        for w in scaling_workloads(gb, reduction) {
            let arrivals = arrivals_of(&w);
            // In-memory: generous budget. Out-of-core: budget sized so the
            // working set exceeds RAM by ~4x, like the paper's 80GB-on-16
            // configuration.
            let budget = if in_memory {
                u64::MAX
            } else {
                let total_bytes: u64 = arrivals.iter().map(|(_, i)| i.bytes as u64).sum();
                (total_bytes / j as u64) / 4
            };
            reports.push(run_operator(
                OperatorKind::Dynamic,
                &w,
                &arrivals,
                j,
                budget,
            ));
        }
        rows.push((format!("{gb}GB/{j}"), reports));
    }
    rows
}

/// Both weak-scaling figures share one set of runs.
/// One ladder of runs per memory regime: `(regime label, [(config label, reports)])`.
type ScalingResults = Vec<(&'static str, Vec<(String, Vec<RunReport>)>)>;

fn scaling_results() -> ScalingResults {
    vec![
        ("in-memory", run_ladder(&IN_MEMORY_LADDER, true)),
        ("out-of-core", run_ladder(&OUT_OF_CORE_LADDER, false)),
    ]
}

fn print_fig8a(results: &ScalingResults) {
    banner("Fig 8a: weak scalability - execution time (virtual s), Dynamic");
    for (title, rows) in results {
        println!("  [{title}]");
        let mut table = Table::new(&["config", "EQ5", "EQ7", "BNCI"]);
        for (label, reports) in rows {
            table.row(vec![
                label.clone(),
                secs_star(&reports[0]),
                secs_star(&reports[1]),
                secs_star(&reports[2]),
            ]);
        }
        table.print();
    }
    println!("  paper shape: near-flat rows (ideal weak scaling), BNCI drifts up with its ILF growth;\n  out-of-core is roughly an order of magnitude slower than in-memory.");
}

fn print_fig8b(results: &ScalingResults) {
    banner("Fig 8b: weak scalability - throughput (tuples per virtual s), Dynamic");
    for (title, rows) in results {
        println!("  [{title}]");
        let mut table = Table::new(&["config", "EQ5", "EQ7", "BNCI"]);
        for (label, reports) in rows {
            table.row(vec![
                label.clone(),
                format!("{:.0}", reports[0].throughput),
                format!("{:.0}", reports[1].throughput),
                format!("{:.0}", reports[2].throughput),
            ]);
        }
        table.print();
    }
    println!("  paper shape: throughput ~doubles with each rung (near-perfect weak scaling).");
}

/// Fig. 8a: weak-scaling execution time.
pub fn run_fig8a() {
    print_fig8a(&scaling_results());
}

/// Fig. 8b: weak-scaling throughput.
pub fn run_fig8b() {
    print_fig8b(&scaling_results());
}

/// Fig. 8c: the fluctuation experiment. 8 GB, J = 64, k ∈ {2,4,6,8}.
pub fn run_fig8c() {
    banner("Fig 8c: ILF/ILF* under fluctuating |R|/|S| (Fluct-Join, 8GB, J=64)");
    let d = db(8, Skew::Z0);
    let w = fluct_join(&d);
    let mut table = Table::new(&[
        "k",
        "migrations",
        "max ILF/ILF* (post-warmup)",
        "bound",
        "within",
    ]);
    for k in [2u64, 4, 6, 8] {
        let arrivals = fluctuating(&w, k, SEED);
        // Theorem 4.6 assumes arrivals are flow-controlled relative to
        // processing (the paper's Storm deployment has backpressure):
        // pace the source below the measured saturated capacity.
        let sat = run_operator(OperatorKind::Dynamic, &w, &arrivals, 64, u64::MAX);
        let report = run_operator_paced(
            OperatorKind::Dynamic,
            &w,
            &arrivals,
            64,
            u64::MAX,
            SourcePacing::per_second((sat.throughput * 0.6) as u64),
        );
        let warmup = arrivals.len() as u64 / 20; // 5%: past initial adaptation
        let max_ratio = report.max_competitive_ratio(warmup);
        // Theorem 4.6 bound plus slack for the decentralised estimator
        // (the theorem assumes exact cardinalities; Alg. 1 samples).
        let bound = 1.25 * 1.15;
        table.row(vec![
            k.to_string(),
            report.migrations.to_string(),
            format!("{max_ratio:.3}"),
            "1.25 (+est. slack)".into(),
            if max_ratio <= bound {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    table.print();
    println!(
        "  paper shape: ratio never exceeds 1.25 at any fluctuation rate; many migrations fire."
    );
}

/// Fig. 8d: execution-time progress under fluctuation stays linear.
pub fn run_fig8d() {
    banner("Fig 8d: execution-time progress under fluctuation (Fluct-Join, 8GB, J=64)");
    let d = db(8, Skew::Z0);
    let w = fluct_join(&d);
    let mut table = Table::new(&["% input", "k=2", "k=4", "k=6", "k=8"]);
    let mut series = Vec::new();
    let mut totals = Vec::new();
    for k in [2u64, 4, 6, 8] {
        let arrivals = fluctuating(&w, k, SEED);
        totals.push(arrivals.len() as f64);
        series.push(run_operator(
            OperatorKind::Dynamic,
            &w,
            &arrivals,
            64,
            u64::MAX,
        ));
    }
    for pct in (10..=100).step_by(10) {
        let mut cells = vec![format!("{pct}%")];
        for report in series.iter() {
            let t = report
                .sample_at_fraction(pct as f64 / 100.0)
                .map(|s| s.at.as_secs_f64())
                .unwrap_or(0.0);
            cells.push(format!("{t:.3}"));
        }
        table.row(cells);
    }
    table.print();
    // Linearity check: the second half should take a comparable amount of
    // time to the first half (migration costs amortised).
    for (i, report) in series.iter().enumerate() {
        let half = report
            .sample_at_fraction(0.5)
            .map(|s| s.at.as_secs_f64())
            .unwrap_or(0.0);
        let full = report.exec_secs();
        println!(
            "  k={}: first half {:.3}s, second half {:.3}s (ratio {:.2})",
            [2, 4, 6, 8][i],
            half,
            full - half,
            (full - half) / half.max(1e-9)
        );
    }
    println!("  paper shape: progress is linear for every k - migrations are fully amortised.");
}

/// All of Fig. 8 (the weak-scaling runs are shared between 8a and 8b).
pub fn run_fig8() {
    let results = scaling_results();
    print_fig8a(&results);
    print_fig8b(&results);
    run_fig8c();
    run_fig8d();
}
