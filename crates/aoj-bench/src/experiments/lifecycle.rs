//! The `lifecycle` experiment: the state lifecycle subsystem, measured.
//!
//! Three legs per backend (simulator and real threads), over the
//! identical seeded stream:
//!
//! * **baseline** — eviction off: the session stores every tuple
//!   forever, the reference for storage growth and for the full join
//!   multiset;
//! * **windowed** — a count window of `span` tuples partitioned into
//!   sub-windows: steady-state storage must plateau well below the
//!   baseline while the evicted-bytes gauge climbs (checked);
//! * **round-trip** — checkpoint at 60% of the stream, restore from the
//!   file, push the remainder: the union of the pre-checkpoint and
//!   post-restore match multisets must equal the uninterrupted
//!   baseline's output exactly (checked).
//!
//! Results go to stdout and to machine-readable
//! `BENCH_lifecycle[_smoke].json`.

use aoj_core::predicate::Predicate;
use aoj_datagen::queries::{StreamItem, Workload};
use aoj_datagen::stream::{interleave, Arrivals};
use aoj_datagen::zipf::ZipfSampler;
use aoj_operators::{
    human_bytes, BackendChoice, JoinSession, OperatorKind, RunReport, SessionBuilder,
};

use super::common::{banner, Table, SEED};

/// Zipf-skewed equi-join, equal stream sizes — the same shape the
/// `contract` experiment uses, sized so the stream runs several windows
/// deep.
fn lifecycle_workload(n_each: usize, key_space: u64, seed: u64) -> Workload {
    let mut zr = ZipfSampler::new(key_space, 0.8, seed);
    let mut zs = ZipfSampler::new(key_space, 0.8, seed ^ 0x11FE);
    let item = |z: &mut ZipfSampler| StreamItem {
        key: z.next() as i64,
        aux: 0,
        bytes: 64,
    };
    Workload {
        name: "zipf-lifecycle",
        predicate: Predicate::Equi,
        r_items: (0..n_each).map(|_| item(&mut zr)).collect(),
        s_items: (0..n_each).map(|_| item(&mut zs)).collect(),
    }
}

fn builder(w: &Workload, seed: u64, backend: BackendChoice) -> SessionBuilder {
    SessionBuilder::new(4, OperatorKind::Dynamic)
        .with_predicate(w.predicate.clone())
        .with_workload(w.name)
        .with_seed(seed)
        .with_backend(backend)
        .with_collect_matches(true)
}

fn run_session(b: SessionBuilder, arrivals: &Arrivals) -> RunReport {
    let mut session = JoinSession::open(b);
    session.push_batch(arrivals.iter().copied()).unwrap();
    session.close()
}

fn backend_label(backend: BackendChoice) -> &'static str {
    match backend {
        BackendChoice::Sim => "sim",
        BackendChoice::Threaded => "threaded",
        BackendChoice::Tcp => "tcp",
    }
}

fn row(table: &mut Table, name: &str, backend: &str, r: &RunReport) {
    table.row(vec![
        name.to_string(),
        backend.to_string(),
        format!("{:.3}", r.exec_secs()),
        r.matches.to_string(),
        human_bytes(r.total_storage_bytes),
        human_bytes(r.total_evicted_bytes()),
        r.total_window_tuples().to_string(),
    ]);
}

fn json_run(name: &str, span: u64, r: &RunReport) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"backend\":\"{}\",\"window_span\":{},",
            "\"exec_s\":{:.6},\"throughput_tps\":{:.1},\"matches\":{},",
            "\"stored_bytes\":{},\"evicted_bytes\":{},\"window_tuples\":{}}}"
        ),
        name,
        r.backend,
        span,
        r.exec_secs(),
        r.throughput,
        r.matches,
        r.total_storage_bytes,
        r.total_evicted_bytes(),
        r.total_window_tuples(),
    )
}

/// One backend's three legs; panics if the window fails to bound
/// storage, never evicts, or the checkpoint round-trip loses or
/// duplicates matches. Returns `(baseline, windowed, roundtrip-json)`.
fn run_lifecycle_on(
    backend: BackendChoice,
    w: &Workload,
    arrivals: &Arrivals,
    span: u64,
) -> (RunReport, RunReport, String) {
    let label = backend_label(backend);

    let baseline = run_session(builder(w, SEED, backend), arrivals);
    let windowed = run_session(builder(w, SEED, backend).with_count_window(span), arrivals);

    assert!(
        windowed.total_evicted_bytes() > 0,
        "{label}: the {span}-tuple window never evicted on a {}-tuple stream",
        arrivals.len()
    );
    assert!(
        windowed.total_storage_bytes < baseline.total_storage_bytes / 2,
        "{label}: windowed storage {} did not plateau below half the unwindowed {}",
        windowed.total_storage_bytes,
        baseline.total_storage_bytes
    );
    assert!(
        windowed.matches > 0 && windowed.matches <= baseline.matches,
        "{label}: windowed run emitted {} matches vs baseline {}",
        windowed.matches,
        baseline.matches
    );

    // Checkpoint → restore → continue: exact multiset identity with the
    // uninterrupted baseline.
    let cut = arrivals.len() * 3 / 5;
    let path = std::env::temp_dir().join(format!("aoj-bench-lifecycle-{label}.ckpt"));
    let mut session = JoinSession::open(builder(w, SEED, backend));
    session.push_batch(arrivals[..cut].iter().copied()).unwrap();
    let pre = session.checkpoint(&path).unwrap();
    let mut restored = JoinSession::restore(builder(w, SEED, backend), &path).unwrap();
    restored
        .push_batch(arrivals[cut..].iter().copied())
        .unwrap();
    let post = restored.close();
    std::fs::remove_file(&path).ok();

    let mut union: Vec<(u64, u64)> = pre
        .match_pairs
        .iter()
        .chain(post.match_pairs.iter())
        .copied()
        .collect();
    union.sort_unstable();
    assert_eq!(
        union, baseline.match_pairs,
        "{label}: checkpoint/restore lost or duplicated matches"
    );
    println!(
        "  {label}: checkpoint at tuple {cut} restored cleanly \
         ({} pre + {} post = {} matches, identical to the uninterrupted run)",
        pre.matches, post.matches, baseline.matches
    );

    let roundtrip = format!(
        "{{\"backend\":\"{label}\",\"cut\":{cut},\"pre_matches\":{},\
         \"post_matches\":{},\"union_matches\":{},\"verified\":true}}",
        pre.matches,
        post.matches,
        union.len(),
    );
    (baseline, windowed, roundtrip)
}

/// The `reproduce lifecycle [--smoke]` entry point: runs **both**
/// backends regardless of `--backend` (the cross-backend agreement is
/// the point).
pub fn run_lifecycle(smoke: bool) {
    let n_each = if smoke { 2_500 } else { 8_000 };
    let span = if smoke { 1_500u64 } else { 3_000u64 };
    banner(&format!(
        "state lifecycle{}: windowed eviction + checkpoint/restore, J=4, both backends",
        if smoke { " (smoke)" } else { "" },
    ));
    let w = lifecycle_workload(n_each, 2_000, SEED);
    let arrivals = interleave(&w, SEED ^ 0x11FE);

    let mut table = Table::new(&[
        "run",
        "backend",
        "exec (s)",
        "matches",
        "stored",
        "evicted",
        "window tuples",
    ]);
    let mut runs = Vec::new();
    let mut roundtrips = Vec::new();
    for backend in [BackendChoice::Sim, BackendChoice::Threaded] {
        let label = backend_label(backend);
        let (baseline, windowed, roundtrip) = run_lifecycle_on(backend, &w, &arrivals, span);
        row(&mut table, "baseline", label, &baseline);
        row(&mut table, "windowed", label, &windowed);
        runs.push(json_run("baseline", 0, &baseline));
        runs.push(json_run("windowed", span, &windowed));
        roundtrips.push(roundtrip);
    }
    table.print();
    println!(
        "  verified on both backends: eviction bounds steady-state storage, \
         the round-trip multiset is exact"
    );

    let json = format!(
        "{{\"experiment\":\"lifecycle\",\"smoke\":{},\"workload\":\"{}\",\
         \"input_tuples\":{},\"window_span\":{},\"runs\":[{}],\"roundtrips\":[{}]}}\n",
        smoke,
        w.name,
        arrivals.len(),
        span,
        runs.join(","),
        roundtrips.join(","),
    );
    // Smoke runs (CI) write to a side file so they never clobber the
    // committed baseline.
    let path = if smoke {
        "BENCH_lifecycle_smoke.json"
    } else {
        "BENCH_lifecycle.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
