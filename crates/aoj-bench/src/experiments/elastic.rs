//! The `elastic` experiment: live §4.2.2 scale-out, measured.
//!
//! Two runs over the identical seeded stream, on the chosen backend:
//!
//! * **at-capacity** — Dynamic with the full `J` from tuple one (the
//!   over-provisioned baseline the paper's elasticity argument wants to
//!   avoid paying for);
//! * **grow-from-small** — Dynamic starting at `J/4` with live
//!   elasticity armed: the controller expands `(n, m) → (2n, 2m)` at a
//!   migration checkpoint once every active joiner fills past `M/2`,
//!   splitting parent state across dormant machines while tuples flow.
//!
//! Both runs must emit the identical join multiset (checked), the
//! elastic run must actually expand, and every parent must ship at most
//! twice its stored state (Theorem 4.3, checked). Results go to stdout
//! and to machine-readable `BENCH_elastic.json` for the perf trajectory.

use aoj_core::predicate::Predicate;
use aoj_datagen::queries::{StreamItem, Workload};
use aoj_datagen::stream::interleave;
use aoj_datagen::zipf::ZipfSampler;
use aoj_operators::{
    human_bytes, run, BackendChoice, ElasticConfig, OperatorKind, RunConfig, RunReport,
};

use super::common::{banner, Table, SEED};

/// Zipf-skewed equi-join: hot-headed keys, fact-vs-dimension sizing.
fn zipf_equi_workload(nr: usize, ns: usize, key_space: u64, seed: u64) -> Workload {
    let mut zr = ZipfSampler::new(key_space, 0.8, seed);
    let mut zs = ZipfSampler::new(key_space, 0.8, seed ^ 0xE1A5);
    let item = |z: &mut ZipfSampler| StreamItem {
        key: z.next() as i64,
        aux: 0,
        bytes: 96,
    };
    Workload {
        name: "zipf-equi",
        predicate: Predicate::Equi,
        r_items: (0..nr).map(|_| item(&mut zr)).collect(),
        s_items: (0..ns).map(|_| item(&mut zs)).collect(),
    }
}

fn row(table: &mut Table, name: &str, r: &RunReport, j0: u32) {
    table.row(vec![
        name.to_string(),
        format!("{j0}"),
        format!("{}", r.final_mapping.j()),
        format!("({},{})", r.final_mapping.n, r.final_mapping.m),
        r.expansions.to_string(),
        r.migrations.to_string(),
        format!("{:.3}", r.exec_secs()),
        format!("{:.0}", r.throughput),
        human_bytes(r.max_ilf_bytes),
        human_bytes(r.network_bytes),
        human_bytes(r.migration_bytes),
    ]);
}

fn json_run(name: &str, j0: u32, r: &RunReport) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"backend\":\"{}\",\"j_initial\":{},\"j_final\":{},",
            "\"final_mapping\":[{},{}],\"expansions\":{},\"migrations\":{},",
            "\"exec_s\":{:.6},\"throughput_tps\":{:.1},\"matches\":{},",
            "\"max_ilf_bytes\":{},\"network_bytes\":{},\"migration_bytes\":{},",
            "\"p50_latency_us\":{},\"p99_latency_us\":{}}}"
        ),
        name,
        r.backend,
        j0,
        r.final_mapping.j(),
        r.final_mapping.n,
        r.final_mapping.m,
        r.expansions,
        r.migrations,
        r.exec_secs(),
        r.throughput,
        r.matches,
        r.max_ilf_bytes,
        r.network_bytes,
        r.migration_bytes,
        r.p50_latency_us,
        r.p99_latency_us,
    )
}

/// One at-capacity + one grow-from-small run; panics if the elastic run
/// fails to expand, diverges from the baseline output, or violates the
/// Theorem 4.3 transfer bound. Returns `(at_capacity, elastic)`.
pub fn run_elastic_pair(
    backend: BackendChoice,
    j_full: u32,
    nr: usize,
    ns: usize,
) -> (RunReport, RunReport) {
    let w = zipf_equi_workload(nr, ns, 2_000, SEED);
    let arrivals = interleave(&w, SEED ^ 0xE1A5);
    let total_bytes: u64 = arrivals.iter().map(|(_, i)| i.bytes as u64).sum();
    let j0 = j_full / 4;

    let mut at_capacity = RunConfig::new(j_full, OperatorKind::Dynamic);
    at_capacity.collect_matches = true;
    at_capacity.backend = backend;
    let full = run(&arrivals, &w.predicate, w.name, &at_capacity);

    let mut grow = RunConfig::new(j0, OperatorKind::Dynamic);
    grow.collect_matches = true;
    grow.backend = backend;
    // Capacity target such that the small grid fills past M/2 roughly a
    // third of the way through the stream: per-joiner stored bytes on a
    // square grid track ~(copies/j0) ≈ total·√j0/j0.
    grow.elastic = Some(ElasticConfig::new(total_bytes / 3, 1));
    let elastic = run(&arrivals, &w.predicate, w.name, &grow);

    assert!(
        elastic.expansions >= 1,
        "elastic run never expanded — lower the capacity target"
    );
    assert_eq!(
        full.match_pairs, elastic.match_pairs,
        "elastic and at-capacity runs must emit the identical join multiset"
    );
    for t in &elastic.expand_transfers {
        assert!(
            t.sent_tuples <= 2 * t.stored_tuples,
            "parent {} violated Theorem 4.3: sent {} > 2x stored {}",
            t.joiner,
            t.sent_tuples,
            t.stored_tuples
        );
    }
    (full, elastic)
}

/// The `reproduce elastic [--smoke]` entry point.
pub fn run_elastic(backend: BackendChoice, smoke: bool) {
    let j_full = 16u32;
    let (nr, ns) = if smoke { (600, 2_400) } else { (3_000, 12_000) };
    let backend_label = match backend {
        BackendChoice::Sim => "sim",
        BackendChoice::Threaded => "threaded",
        BackendChoice::Tcp => "tcp",
    };
    banner(&format!(
        "elastic scale-out ({backend_label}{}): start-at-capacity J={j_full} vs grow-from-small J={} -> {j_full}",
        if smoke { ", smoke" } else { "" },
        j_full / 4,
    ));
    let (full, elastic) = run_elastic_pair(backend, j_full, nr, ns);

    let mut table = Table::new(&[
        "run",
        "J0",
        "J final",
        "mapping",
        "expansions",
        "migrations",
        "exec (s)",
        "tuples/s",
        "max ILF",
        "network",
        "relocated",
    ]);
    row(&mut table, "at-capacity", &full, j_full);
    row(&mut table, "grow-from-small", &elastic, j_full / 4);
    table.print();

    let (sent, stored): (u64, u64) = elastic
        .expand_transfers
        .iter()
        .fold((0, 0), |(a, b), t| (a + t.sent_tuples, b + t.stored_tuples));
    println!(
        "  expansion fan-out: {} parents shipped {} copies of {} stored tuples \
         ({:.2}x, Theorem 4.3 bound 2x)",
        elastic.expand_transfers.len(),
        sent,
        stored,
        sent as f64 / stored.max(1) as f64,
    );
    println!(
        "  verified: both runs emitted the identical multiset of {} join pairs",
        elastic.matches
    );

    let json = format!(
        "{{\"experiment\":\"elastic\",\"backend\":\"{}\",\"smoke\":{},\"workload\":\"{}\",\
         \"input_tuples\":{},\"theorem43_ratio\":{:.4},\"runs\":[{},{}]}}\n",
        backend_label,
        smoke,
        elastic.workload,
        elastic.input_tuples,
        sent as f64 / stored.max(1) as f64,
        json_run("at-capacity", j_full, &full),
        json_run("grow-from-small", j_full / 4, &elastic),
    );
    // Smoke runs (CI, quick local checks) write to a side file so they
    // never clobber the committed full-run baseline.
    let path = if smoke {
        "BENCH_elastic_smoke.json"
    } else {
        "BENCH_elastic.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
