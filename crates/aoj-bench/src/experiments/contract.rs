//! The `contract` experiment: the full elastic sawtooth, measured.
//!
//! Two runs over the identical seeded stream, on the chosen backend:
//!
//! * **static** — Dynamic pinned at `J₀ = 1` for the whole stream (the
//!   exactness reference);
//! * **sawtooth** — Dynamic starting at `J₀ = 1` with both elastic
//!   directions armed: the grow phase expands `1 → 4 → 16` on a tight
//!   capacity target with machines provisioned at trigger time, then —
//!   once the drain gate opens late in the stream — the low-water mark
//!   merges `16 → 4 → 1`, retiring machines back into the dormant pool.
//!
//! Both runs must emit the identical join multiset (checked), the
//! sawtooth must actually contract, retired machines must end with zero
//! stored bytes, and every retiree must ship at most 1× its stored
//! state (the mirror of Theorem 4.3's 2× expansion bound — checked).
//! Results go to stdout and to machine-readable
//! `BENCH_contract[_smoke].json`.

use aoj_core::predicate::Predicate;
use aoj_datagen::queries::{StreamItem, Workload};
use aoj_datagen::stream::interleave;
use aoj_datagen::zipf::ZipfSampler;
use aoj_operators::{
    human_bytes, run, BackendChoice, ElasticConfig, OperatorKind, RunConfig, RunReport,
};

use super::common::{banner, Table, SEED};

/// Balanced Zipf-skewed equi-join: equal stream sizes keep Alg. 2 at
/// square mappings, so every sawtooth level is geometrically
/// contractible ((4,4) → (2,2) → (1,1)).
fn balanced_zipf_workload(n_each: usize, key_space: u64, seed: u64) -> Workload {
    let mut zr = ZipfSampler::new(key_space, 0.8, seed);
    let mut zs = ZipfSampler::new(key_space, 0.8, seed ^ 0xC0_17AC);
    let item = |z: &mut ZipfSampler| StreamItem {
        key: z.next() as i64,
        aux: 0,
        bytes: 96,
    };
    Workload {
        name: "zipf-balanced",
        predicate: Predicate::Equi,
        r_items: (0..n_each).map(|_| item(&mut zr)).collect(),
        s_items: (0..n_each).map(|_| item(&mut zs)).collect(),
    }
}

fn row(table: &mut Table, name: &str, r: &RunReport) {
    table.row(vec![
        name.to_string(),
        format!("{}", r.j),
        format!("{}", r.final_mapping.j()),
        r.expansions.to_string(),
        r.contractions.to_string(),
        r.peak_provisioned_machines.to_string(),
        r.provisioned_machines.to_string(),
        format!("{:.3}", r.exec_secs()),
        format!("{:.0}", r.throughput),
        human_bytes(r.max_ilf_bytes),
        human_bytes(r.migration_bytes),
    ]);
}

fn json_run(name: &str, r: &RunReport) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"backend\":\"{}\",\"j_initial\":{},\"j_final\":{},",
            "\"expansions\":{},\"contractions\":{},\"peak_machines\":{},",
            "\"final_machines\":{},\"exec_s\":{:.6},\"throughput_tps\":{:.1},",
            "\"matches\":{},\"max_ilf_bytes\":{},\"network_bytes\":{},",
            "\"migration_bytes\":{},\"p50_latency_us\":{},\"p99_latency_us\":{}}}"
        ),
        name,
        r.backend,
        r.j,
        r.final_mapping.j(),
        r.expansions,
        r.contractions,
        r.peak_provisioned_machines,
        r.provisioned_machines,
        r.exec_secs(),
        r.throughput,
        r.matches,
        r.max_ilf_bytes,
        r.network_bytes,
        r.migration_bytes,
        r.p50_latency_us,
        r.p99_latency_us,
    )
}

/// One static + one sawtooth run; panics if the sawtooth fails to
/// expand or contract, diverges from the static output, violates the 1×
/// contraction transfer bound, or leaves state on a retired machine.
/// Returns `(static, sawtooth)`.
pub fn run_contract_pair(backend: BackendChoice, n_each: usize) -> (RunReport, RunReport) {
    let w = balanced_zipf_workload(n_each, 2_000, SEED);
    let arrivals = interleave(&w, SEED ^ 0xC0_17AC);
    let total_bytes: u64 = arrivals.iter().map(|(_, i)| i.bytes as u64).sum();

    let mut fixed = RunConfig::new(1, OperatorKind::Dynamic);
    fixed.collect_matches = true;
    fixed.backend = backend;
    let static_run = run(&arrivals, &w.predicate, w.name, &fixed);

    let mut saw = RunConfig::new(1, OperatorKind::Dynamic);
    saw.collect_matches = true;
    saw.backend = backend;
    // Grow phase: a capacity target the stream fills early and again
    // after the first split, so both expansions land in the front half.
    // Drain phase: the hold-off gate opens at 60% of the stream (the
    // controller samples 1/J of the ingest, so the gate must sit below
    // its last observed sequence), and the generous low-water mark then
    // merges everything back.
    saw.elastic = Some(
        ElasticConfig::new(total_bytes / 6, 2)
            .with_contraction(u64::MAX / 2, 2)
            .with_contract_holdoff(3 * arrivals.len() as u64 / 5),
    );
    let sawtooth = run(&arrivals, &w.predicate, w.name, &saw);

    assert!(
        sawtooth.expansions >= 1,
        "sawtooth never expanded — lower the capacity target"
    );
    assert!(
        sawtooth.contractions >= 1,
        "sawtooth never contracted — the hold-off gate never opened"
    );
    assert_eq!(
        static_run.match_pairs, sawtooth.match_pairs,
        "sawtooth and static runs must emit the identical join multiset"
    );
    for t in &sawtooth.contract_transfers {
        assert!(
            t.sent_tuples <= t.stored_tuples,
            "retiree {} violated the 1x contraction bound: sent {} > stored {}",
            t.joiner,
            t.sent_tuples,
            t.stored_tuples
        );
    }
    // Every machine outside the final active set must be empty.
    let final_j = sawtooth.final_mapping.j() as usize;
    let live: u64 = sawtooth
        .machines
        .iter()
        .filter(|m| m.stored_bytes > 0)
        .count() as u64;
    assert!(
        live <= final_j as u64,
        "{live} machines hold state but only {final_j} are active — \
         a retired machine kept stored bytes"
    );
    (static_run, sawtooth)
}

/// The `reproduce contract [--smoke]` entry point.
pub fn run_contract(backend: BackendChoice, smoke: bool) {
    let n_each = if smoke { 1_500 } else { 4_000 };
    let backend_label = match backend {
        BackendChoice::Sim => "sim",
        BackendChoice::Threaded => "threaded",
        BackendChoice::Tcp => "tcp",
    };
    banner(&format!(
        "elastic contraction ({backend_label}{}): sawtooth J=1 -> 16 -> 1 vs static J=1",
        if smoke { ", smoke" } else { "" },
    ));
    let (static_run, sawtooth) = run_contract_pair(backend, n_each);

    let mut table = Table::new(&[
        "run",
        "J0",
        "J final",
        "expansions",
        "contractions",
        "peak mach",
        "final mach",
        "exec (s)",
        "tuples/s",
        "max ILF",
        "relocated",
    ]);
    row(&mut table, "static", &static_run);
    row(&mut table, "sawtooth", &sawtooth);
    table.print();

    let (sent, stored): (u64, u64) = sawtooth
        .contract_transfers
        .iter()
        .fold((0, 0), |(a, b), t| (a + t.sent_tuples, b + t.stored_tuples));
    println!(
        "  contraction fan-in: {} retirees shipped {} copies of {} stored tuples \
         ({:.2}x, bound 1x; expansion's Theorem 4.3 bound is 2x)",
        sawtooth.contract_transfers.len(),
        sent,
        stored,
        sent as f64 / stored.max(1) as f64,
    );
    println!(
        "  trigger-time provisioning: {} machine slots registered, {} provisioned at peak, \
         {} at quiescence",
        16 + 1,
        sawtooth.peak_provisioned_machines,
        sawtooth.provisioned_machines,
    );
    println!(
        "  verified: both runs emitted the identical multiset of {} join pairs",
        sawtooth.matches
    );

    let json = format!(
        "{{\"experiment\":\"contract\",\"backend\":\"{}\",\"smoke\":{},\"workload\":\"{}\",\
         \"input_tuples\":{},\"contract_ratio\":{:.4},\"runs\":[{},{}]}}\n",
        backend_label,
        smoke,
        sawtooth.workload,
        sawtooth.input_tuples,
        sent as f64 / stored.max(1) as f64,
        json_run("static", &static_run),
        json_run("sawtooth", &sawtooth),
    );
    // Smoke runs (CI) write to a side file so they never clobber the
    // committed baseline.
    let path = if smoke {
        "BENCH_contract_smoke.json"
    } else {
        "BENCH_contract.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  could not write {path}: {e}"),
    }
}
