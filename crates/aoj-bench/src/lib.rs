//! # aoj-bench — regenerating the paper's evaluation
//!
//! One module per table/figure of §5 (see DESIGN.md §4 for the index), a
//! [`bin/reproduce`](../src/bin/reproduce.rs) CLI that prints the same
//! rows/series the paper reports, and criterion microbenchmarks under
//! `benches/`.
//!
//! Scale: experiments run the paper's dataset sizes through
//! [`aoj_datagen::ScaledGb`] (row counts reduced ~1000x, ratios intact)
//! on the simulated cluster. Absolute numbers are simulation units; the
//! *shapes* — who wins, by what factor, where the crossovers are — are
//! the reproduction targets, recorded in EXPERIMENTS.md.

pub mod experiments;

pub use experiments::*;
