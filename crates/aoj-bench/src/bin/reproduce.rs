//! `reproduce` — regenerate every table and figure of the paper's
//! evaluation section (§5) on the simulated cluster, or run the
//! wall-clock benchmark on the threaded runtime.
//!
//! ```text
//! cargo run --release -p aoj-bench --bin reproduce -- <experiment>
//! cargo run --release -p aoj-bench --bin reproduce -- --backend threaded
//! cargo run --release -p aoj-bench --bin reproduce -- elastic --smoke
//! cargo run --release -p aoj-bench --bin reproduce -- wallclock --batch 1,64,256
//! cargo run --release -p aoj-bench --bin reproduce -- --backend tcp wallclock --smoke
//! ```
//!
//! Experiments: `table2`, `fig6a`..`fig6d`, `fig6`, `fig7a`..`fig7d`,
//! `fig7`, `fig8a`..`fig8d`, `fig8`, `ablation-migration`,
//! `ablation-epsilon`, `ablation-blocking`, `ablation-elastic`,
//! `ablation-groups`, `ablations`, `wallclock`, `elastic`, `contract`,
//! `lifecycle`, `skew`, `faults`, or `all`.
//!
//! `lifecycle` exercises the state lifecycle subsystem — windowed
//! eviction and a checkpoint→restore→verify round-trip — on **both**
//! backends in one invocation and writes `BENCH_lifecycle[_smoke].json`.
//!
//! `faults` is the chaos experiment: on **all three** backends it kills
//! a live worker mid-stream (simulator event kill, thread abort, process
//! SIGKILL), lets the supervised session detect and recover it, verifies
//! the delivered match multiset against the fault-free simulator witness
//! exactly, and writes `BENCH_faults[_smoke].json`.
//!
//! `--backend threaded` selects the multi-threaded runtime, which hosts
//! the wall-clock benchmark (`wallclock`), the live `elastic` /
//! `contract` scale-out and scale-in experiments, and the `skew`
//! routing comparison; `--backend tcp` selects the multi-process TCP
//! backend (`aoj-net`), which hosts the `wallclock` smoke point and
//! the `skew` comparison (the binary re-execs itself as the worker
//! processes); the paper-figure experiments are simulator-only
//! because their figures are defined in virtual time. `--smoke` shrinks
//! the `elastic` workload (and the `wallclock` sweep) to a CI-sized run.
//! `--batch N[,N...]` overrides the `wallclock` data-plane batch-size
//! sweep (each size runs on **both** backends and writes
//! `BENCH_wallclock.json`).

use aoj_bench::experiments::{
    ablation, contract, elastic, faults, fig6, fig7, fig8, lifecycle, skew, table2, wallclock,
};
use aoj_operators::BackendChoice;

fn main() {
    // When this binary is re-exec'd by the TCP backend as a worker
    // process, divert to the worker loop before anything else; in the
    // coordinator role this returns immediately.
    aoj_net::init_worker();
    let mut backend = "sim".to_string();
    let mut smoke = false;
    let mut batch_sweep: Vec<usize> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                backend = args
                    .next()
                    .unwrap_or_else(|| die("--backend needs a value: sim | threaded | tcp"));
            }
            other if other.starts_with("--backend=") => {
                backend = other["--backend=".len()..].to_string();
            }
            "--smoke" => smoke = true,
            "--batch" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--batch needs a value: N or N,N,..."));
                batch_sweep = parse_batch_sweep(&v);
            }
            other if other.starts_with("--batch=") => {
                batch_sweep = parse_batch_sweep(&other["--batch=".len()..]);
            }
            other => positional.push(other.to_string()),
        }
    }
    let backend_choice = match backend.as_str() {
        "sim" => BackendChoice::Sim,
        "threaded" => BackendChoice::Threaded,
        "tcp" => BackendChoice::Tcp,
        other => die(&format!(
            "unknown backend `{other}`; use sim | threaded | tcp"
        )),
    };
    // The process backend registers itself into the session layer; every
    // tcp session opened below resolves through this factory. Registered
    // unconditionally: experiments that sweep both live backends in one
    // invocation (skew's full mode) open tcp sessions without
    // `--backend tcp`, and registration alone costs nothing.
    aoj_net::install();
    let what = match backend_choice {
        BackendChoice::Sim => positional
            .first()
            .map(|s| s.as_str())
            .unwrap_or("all")
            .to_string(),
        BackendChoice::Threaded => {
            // The threaded runtime hosts the wall-clock benchmark and the
            // elastic scale-out; the figure experiments are defined in
            // virtual time.
            match positional.first().map(|s| s.as_str()) {
                None | Some("wallclock") | Some("all") => "wallclock".to_string(),
                Some("elastic") => "elastic".to_string(),
                Some("contract") => "contract".to_string(),
                Some("lifecycle") => "lifecycle".to_string(),
                Some("skew") => "skew".to_string(),
                Some("faults") => "faults".to_string(),
                Some(other) => die(&format!(
                    "experiment `{other}` is simulator-only; `--backend threaded` \
                     runs `wallclock`, `elastic`, `contract`, `lifecycle`, `skew` or `faults`"
                )),
            }
        }
        BackendChoice::Tcp => {
            // The TCP backend's bench surface is the wall-clock smoke
            // point; the elastic/contract live experiments have their
            // process-lifecycle coverage in the equivalence suite.
            match positional.first().map(|s| s.as_str()) {
                None | Some("wallclock") | Some("all") => "wallclock".to_string(),
                Some("skew") => "skew".to_string(),
                Some("faults") => "faults".to_string(),
                Some(other) => die(&format!(
                    "`--backend tcp` runs `wallclock`, `skew` or `faults`; experiment \
                     `{other}` is not wired to the process backend"
                )),
            }
        }
    };

    if !batch_sweep.is_empty() && what != "wallclock" && what != "all" {
        die(&format!(
            "--batch only applies to the `wallclock` sweep (or `all`); \
             experiment `{what}` would silently ignore it"
        ));
    }

    // `wallclock` always measures a wall-clock backend against the
    // simulator witness: tcp when asked for, the threaded runtime
    // otherwise (including the default sim-backend `all` route).
    let wallclock_backend = if backend_choice == BackendChoice::Tcp {
        BackendChoice::Tcp
    } else {
        BackendChoice::Threaded
    };
    let start = std::time::Instant::now();
    match what.as_str() {
        "table2" => table2::run_table2(),
        "fig6a" => fig6::run_fig6a(),
        "fig6b" => fig6::run_fig6b(),
        "fig6c" => fig6::run_fig6c(),
        "fig6d" => fig6::run_fig6d(),
        "fig6" => fig6::run_fig6(),
        "fig7a" => fig7::run_fig7a(),
        "fig7b" => fig7::run_fig7b(),
        "fig7c" => fig7::run_fig7c(),
        "fig7d" => fig7::run_fig7d(),
        "fig7" => fig7::run_fig7(),
        "fig8a" => fig8::run_fig8a(),
        "fig8b" => fig8::run_fig8b(),
        "fig8c" => fig8::run_fig8c(),
        "fig8d" => fig8::run_fig8d(),
        "fig8" => fig8::run_fig8(),
        "ablation-migration" => ablation::run_ablation_migration(),
        "ablation-epsilon" => ablation::run_ablation_epsilon(),
        "ablation-blocking" => ablation::run_ablation_blocking(),
        "ablation-elastic" => ablation::run_ablation_elastic(),
        "ablation-groups" => ablation::run_ablation_groups(),
        "ablations" => ablation::run_ablations(),
        "wallclock" => wallclock::run_wallclock(wallclock_backend, &batch_sweep, smoke),
        "elastic" => elastic::run_elastic(backend_choice, smoke),
        "contract" => contract::run_contract(backend_choice, smoke),
        "lifecycle" => lifecycle::run_lifecycle(smoke),
        "faults" => faults::run_faults(smoke),
        "skew" => skew::run_skew(
            if backend_choice == BackendChoice::Tcp {
                BackendChoice::Tcp
            } else {
                BackendChoice::Threaded
            },
            smoke,
        ),
        "all" => {
            table2::run_table2();
            fig6::run_fig6();
            fig7::run_fig7();
            fig8::run_fig8();
            ablation::run_ablations();
            wallclock::run_wallclock(wallclock_backend, &batch_sweep, smoke);
            elastic::run_elastic(backend_choice, smoke);
            contract::run_contract(backend_choice, smoke);
            lifecycle::run_lifecycle(smoke);
            skew::run_skew(wallclock_backend, smoke);
            faults::run_faults(smoke);
        }
        other => {
            eprintln!("unknown experiment `{other}`; see --help in the module docs");
            std::process::exit(1);
        }
    }
    eprintln!(
        "\n[reproduce {what}: {:.1}s wall clock]",
        start.elapsed().as_secs_f64()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn parse_batch_sweep(v: &str) -> Vec<usize> {
    v.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| die(&format!("--batch: `{s}` is not a positive integer")))
        })
        .collect()
}
