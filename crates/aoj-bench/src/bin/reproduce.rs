//! `reproduce` — regenerate every table and figure of the paper's
//! evaluation section (§5) on the simulated cluster.
//!
//! ```text
//! cargo run --release -p aoj-bench --bin reproduce -- <experiment>
//! ```
//!
//! Experiments: `table2`, `fig6a`..`fig6d`, `fig6`, `fig7a`..`fig7d`,
//! `fig7`, `fig8a`..`fig8d`, `fig8`, `ablation-migration`,
//! `ablation-epsilon`, `ablation-elastic`, `ablation-groups`, `ablations`,
//! or `all`.

use aoj_bench::experiments::{ablation, fig6, fig7, fig8, table2};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    let start = std::time::Instant::now();
    match what {
        "table2" => table2::run_table2(),
        "fig6a" => fig6::run_fig6a(),
        "fig6b" => fig6::run_fig6b(),
        "fig6c" => fig6::run_fig6c(),
        "fig6d" => fig6::run_fig6d(),
        "fig6" => fig6::run_fig6(),
        "fig7a" => fig7::run_fig7a(),
        "fig7b" => fig7::run_fig7b(),
        "fig7c" => fig7::run_fig7c(),
        "fig7d" => fig7::run_fig7d(),
        "fig7" => fig7::run_fig7(),
        "fig8a" => fig8::run_fig8a(),
        "fig8b" => fig8::run_fig8b(),
        "fig8c" => fig8::run_fig8c(),
        "fig8d" => fig8::run_fig8d(),
        "fig8" => fig8::run_fig8(),
        "ablation-migration" => ablation::run_ablation_migration(),
        "ablation-epsilon" => ablation::run_ablation_epsilon(),
        "ablation-blocking" => ablation::run_ablation_blocking(),
        "ablation-elastic" => ablation::run_ablation_elastic(),
        "ablation-groups" => ablation::run_ablation_groups(),
        "ablations" => ablation::run_ablations(),
        "all" => {
            table2::run_table2();
            fig6::run_fig6();
            fig7::run_fig7();
            fig8::run_fig8();
            ablation::run_ablations();
        }
        other => {
            eprintln!("unknown experiment `{other}`; see --help in the module docs");
            std::process::exit(1);
        }
    }
    eprintln!("\n[reproduce {what}: {:.1}s wall clock]", start.elapsed().as_secs_f64());
}
