//! Metrics collected by the simulator and by the tasks running on it.
//!
//! The paper's evaluation plots are all derived from these counters:
//! execution time (the virtual clock at drain), per-machine busy time and
//! storage (ILF, Figs 6a/6b/7c), message and byte counts (network traffic,
//! §3.3), and spill volume (the starred "overflow to disk" entries of
//! Table 2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::machine::MachineId;
use crate::time::{SimDuration, SimTime};

/// Cluster-wide gauge overlay for sharded backends.
///
/// The threaded runtime gives every worker a private [`Metrics`] shard so
/// handlers never contend on a lock — but that makes *mid-run* cluster-wide
/// readings (progress/ILF timelines, the elastic controller's
/// stored-state trigger) impossible: each shard sees only its own
/// machine's gauges. `SharedGauges` fixes exactly that: a lock-free array
/// of per-machine stored-byte gauges plus the cluster-wide
/// data-processed counter, shared by every shard via `Arc`. Writes stay
/// single-writer per slot (each worker only ever sets its own machines'
/// gauges), reads are racy-by-design point-in-time samples — the same
/// semantics the paper's controller gets from its monitoring plane.
///
/// Backends with one global `Metrics` (the simulator) never install one;
/// all reads fall through to the plain per-machine fields.
#[derive(Debug, Default)]
pub struct SharedGauges {
    stored: Box<[AtomicU64]>,
    evicted: Box<[AtomicU64]>,
    occupancy: Box<[AtomicU64]>,
    data_processed: AtomicU64,
    next_sample_at: AtomicU64,
}

impl SharedGauges {
    /// A gauge array for `machines` machines, all zero.
    pub fn new(machines: usize) -> Arc<SharedGauges> {
        Arc::new(SharedGauges {
            stored: (0..machines).map(|_| AtomicU64::new(0)).collect(),
            evicted: (0..machines).map(|_| AtomicU64::new(0)).collect(),
            occupancy: (0..machines).map(|_| AtomicU64::new(0)).collect(),
            data_processed: AtomicU64::new(0),
            next_sample_at: AtomicU64::new(0),
        })
    }

    /// Stored bytes currently reported for machine `m`.
    #[inline]
    pub fn stored(&self, m: MachineId) -> u64 {
        self.stored[m.index()].load(Ordering::Relaxed)
    }

    /// Cumulative bytes evicted by windowed state expiry on machine `m`.
    #[inline]
    pub fn evicted(&self, m: MachineId) -> u64 {
        self.evicted[m.index()].load(Ordering::Relaxed)
    }

    /// Stored tuple count (window occupancy) reported for machine `m`.
    #[inline]
    pub fn occupancy(&self, m: MachineId) -> u64 {
        self.occupancy[m.index()].load(Ordering::Relaxed)
    }

    /// How many machines the gauge array covers.
    pub fn machine_count(&self) -> usize {
        self.stored.len()
    }

    /// Data items processed cluster-wide so far.
    #[inline]
    pub fn data_processed(&self) -> u64 {
        self.data_processed.load(Ordering::Relaxed)
    }

    /// Overwrite machine `m`'s stored-byte gauge.
    ///
    /// Tasks never call this — they go through [`Metrics::set_stored`],
    /// which keeps the local shard and the overlay in step. The direct
    /// setters exist for backends whose gauge writers are in **another
    /// process**: the TCP backend's coordinator applies the periodic
    /// gauge frames its workers stream to the session overlay, and
    /// relays remote machines' values into the controller worker's
    /// overlay so the elastic trigger sees the whole cluster.
    #[inline]
    pub fn set_stored(&self, m: MachineId, bytes: u64) {
        self.stored[m.index()].store(bytes, Ordering::Relaxed);
    }

    /// Overwrite machine `m`'s evicted-byte gauge (see
    /// [`set_stored`](SharedGauges::set_stored)).
    #[inline]
    pub fn set_evicted(&self, m: MachineId, bytes: u64) {
        self.evicted[m.index()].store(bytes, Ordering::Relaxed);
    }

    /// Overwrite machine `m`'s window-occupancy gauge (see
    /// [`set_stored`](SharedGauges::set_stored)).
    #[inline]
    pub fn set_occupancy(&self, m: MachineId, tuples: u64) {
        self.occupancy[m.index()].store(tuples, Ordering::Relaxed);
    }

    /// Overwrite the cluster-wide data-processed counter (see
    /// [`set_stored`](SharedGauges::set_stored); the coordinator sets it
    /// to the sum of its workers' reported counts).
    #[inline]
    pub fn set_data_processed(&self, n: u64) {
        self.data_processed.store(n, Ordering::Relaxed);
    }
}

/// A point on the cluster-wide progress timeline, recorded by worker
/// tasks as they process data items (see [`Metrics::note_data_processed`]).
#[derive(Clone, Copy, Debug)]
pub struct ProgressPoint {
    /// Data items processed across the cluster when the point was taken.
    pub processed: u64,
    /// Virtual time.
    pub at: SimTime,
    /// Maximum per-machine stored bytes at that instant.
    pub max_stored: u64,
    /// Total stored bytes across the cluster.
    pub total_stored: u64,
}

/// Counters for one machine.
#[derive(Clone, Debug, Default)]
pub struct MachineMetrics {
    /// Messages that arrived at this machine.
    pub messages_in: u64,
    /// Messages sent from this machine.
    pub messages_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Total virtual CPU time consumed by handlers on this machine.
    pub busy: SimDuration,
    /// Bytes of operator state currently held (reported by tasks).
    pub stored_bytes: u64,
    /// High-water mark of `stored_bytes`.
    pub peak_stored_bytes: u64,
    /// Bytes of state that live beyond the RAM budget (simulated spill).
    pub spilled_bytes: u64,
    /// Cumulative bytes dropped by windowed state expiry (reported by
    /// tasks; 0 unless a retention window is configured).
    pub evicted_bytes: u64,
    /// Stored tuple count — window occupancy (reported by tasks).
    pub window_tuples: u64,
}

/// Global metric sink. Tasks may update the per-machine storage gauges via
/// [`Ctx::metrics`](crate::Ctx::metrics); the simulator maintains the rest.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    per_machine: Vec<MachineMetrics>,
    /// Total events processed (diagnostics).
    pub events: u64,
    /// Virtual time of the last processed event.
    pub last_event_at: SimTime,
    /// Data items processed cluster-wide (maintained by worker tasks).
    pub data_processed: u64,
    /// Progress timeline, sampled every `sample_spacing` processed items.
    pub progress: Vec<ProgressPoint>,
    /// Sampling spacing for the progress timeline (0 disables sampling).
    pub sample_spacing: u64,
    next_sample_at: u64,
    /// Cluster-wide gauge overlay, installed by sharded backends so that
    /// mid-run storage/progress reads are globally consistent.
    shared: Option<Arc<SharedGauges>>,
}

impl Metrics {
    /// Register one more machine (backends call this once per machine;
    /// tasks never do).
    pub fn add_machine(&mut self) {
        self.per_machine.push(MachineMetrics::default());
    }

    /// Number of registered machines.
    pub fn machine_count(&self) -> usize {
        self.per_machine.len()
    }

    /// Metrics for machine `m`.
    pub fn machine(&self, m: MachineId) -> &MachineMetrics {
        &self.per_machine[m.index()]
    }

    /// All machines, indexable by `MachineId::index`.
    pub fn machines(&self) -> &[MachineMetrics] {
        &self.per_machine
    }

    /// Mutable access for tasks that maintain storage gauges.
    pub fn machine_mut(&mut self, m: MachineId) -> &mut MachineMetrics {
        &mut self.per_machine[m.index()]
    }

    /// Install a cluster-wide gauge overlay (sharded backends only). The
    /// overlay must be sized to the final machine count.
    pub fn install_shared(&mut self, shared: Arc<SharedGauges>) {
        self.shared = Some(shared);
    }

    /// The installed gauge overlay, if any.
    pub fn shared(&self) -> Option<&Arc<SharedGauges>> {
        self.shared.as_ref()
    }

    /// Record that a task on `m` now stores `bytes` of operator state.
    pub fn set_stored(&mut self, m: MachineId, bytes: u64) {
        let mm = &mut self.per_machine[m.index()];
        mm.stored_bytes = bytes;
        if bytes > mm.peak_stored_bytes {
            mm.peak_stored_bytes = bytes;
        }
        if let Some(sh) = &self.shared {
            sh.stored[m.index()].store(bytes, Ordering::Relaxed);
        }
    }

    /// Stored bytes currently reported for machine `m` — cluster-wide
    /// consistent even on sharded backends (reads the shared overlay when
    /// one is installed).
    pub fn stored_bytes_of(&self, m: MachineId) -> u64 {
        match &self.shared {
            Some(sh) => sh.stored(m),
            None => self.per_machine[m.index()].stored_bytes,
        }
    }

    /// Record machine `m`'s cumulative evicted-byte total. A gauge of a
    /// single-writer counter (the joiner owns it and reports its running
    /// total), not an increment — so a restored session can carry a
    /// checkpoint's base count through shard absorption unchanged.
    pub fn set_evicted(&mut self, m: MachineId, total: u64) {
        let mm = &mut self.per_machine[m.index()];
        mm.evicted_bytes = mm.evicted_bytes.max(total);
        if let Some(sh) = &self.shared {
            sh.evicted[m.index()].store(mm.evicted_bytes, Ordering::Relaxed);
        }
    }

    /// Cumulative evicted bytes for machine `m` — cluster-wide consistent
    /// even on sharded backends (reads the shared overlay when one is
    /// installed).
    pub fn evicted_bytes_of(&self, m: MachineId) -> u64 {
        match &self.shared {
            Some(sh) => sh.evicted(m),
            None => self.per_machine[m.index()].evicted_bytes,
        }
    }

    /// Total bytes dropped by windowed eviction across the cluster — the
    /// genuine-drain signal behind the elastic contraction trigger.
    pub fn total_evicted_bytes(&self) -> u64 {
        (0..self.per_machine.len())
            .map(|i| self.evicted_bytes_of(MachineId(i)))
            .sum()
    }

    /// Record that machine `m` currently stores `tuples` tuples (window
    /// occupancy gauge).
    pub fn set_window_tuples(&mut self, m: MachineId, tuples: u64) {
        self.per_machine[m.index()].window_tuples = tuples;
        if let Some(sh) = &self.shared {
            sh.occupancy[m.index()].store(tuples, Ordering::Relaxed);
        }
    }

    /// Window occupancy for machine `m` — overlay-aware like
    /// [`stored_bytes_of`](Metrics::stored_bytes_of).
    pub fn window_tuples_of(&self, m: MachineId) -> u64 {
        match &self.shared {
            Some(sh) => sh.occupancy(m),
            None => self.per_machine[m.index()].window_tuples,
        }
    }

    /// Record simulated spill volume on machine `m`.
    pub fn add_spilled(&mut self, m: MachineId, bytes: u64) {
        self.per_machine[m.index()].spilled_bytes += bytes;
    }

    /// Total bytes sent across the cluster.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_machine.iter().map(|m| m.bytes_out).sum()
    }

    /// Total messages sent across the cluster.
    pub fn total_messages(&self) -> u64 {
        self.per_machine.iter().map(|m| m.messages_out).sum()
    }

    /// Total operator state currently stored across the cluster.
    pub fn total_stored_bytes(&self) -> u64 {
        (0..self.per_machine.len())
            .map(|i| self.stored_bytes_of(MachineId(i)))
            .sum()
    }

    /// Maximum per-machine stored bytes (the paper's "maximum ILF per
    /// machine", Fig 6a).
    pub fn max_stored_bytes(&self) -> u64 {
        (0..self.per_machine.len())
            .map(|i| self.stored_bytes_of(MachineId(i)))
            .max()
            .unwrap_or(0)
    }

    /// Maximum per-machine busy time; the makespan lower bound.
    pub fn max_busy(&self) -> SimDuration {
        self.per_machine
            .iter()
            .map(|m| m.busy)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Record `n` data items processed at virtual time `at`, sampling the
    /// progress timeline when the spacing boundary is crossed. Called by
    /// worker tasks from their handlers; this is the simulator's
    /// omniscient measurement plane, not part of the distributed
    /// algorithm.
    pub fn note_data_processed(&mut self, n: u64, at: SimTime) {
        self.data_processed += n;
        if self.sample_spacing == 0 {
            return;
        }
        match &self.shared {
            None => {
                if self.data_processed >= self.next_sample_at {
                    self.next_sample_at = self.data_processed + self.sample_spacing;
                    let point = ProgressPoint {
                        processed: self.data_processed,
                        at,
                        max_stored: self.max_stored_bytes(),
                        total_stored: self.total_stored_bytes(),
                    };
                    self.progress.push(point);
                }
            }
            Some(sh) => {
                // Sharded backends: count and sample against the shared
                // cluster-wide state. The CAS claims each sampling
                // boundary for exactly one worker; the claimed point goes
                // into that worker's shard and the shards' timelines are
                // merged (and time-sorted) by `absorb` after the run.
                let total = sh.data_processed.fetch_add(n, Ordering::Relaxed) + n;
                let due = sh.next_sample_at.load(Ordering::Relaxed);
                if total >= due
                    && sh
                        .next_sample_at
                        .compare_exchange(
                            due,
                            total + self.sample_spacing,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    let point = ProgressPoint {
                        processed: total,
                        at,
                        max_stored: self.max_stored_bytes(),
                        total_stored: self.total_stored_bytes(),
                    };
                    self.progress.push(point);
                }
            }
        }
    }

    /// Record a message of `bytes` arriving at machine `m` (maintained by
    /// execution backends).
    pub fn on_arrive(&mut self, m: MachineId, bytes: u64) {
        let mm = &mut self.per_machine[m.index()];
        mm.messages_in += 1;
        mm.bytes_in += bytes;
    }

    /// Record a message of `bytes` sent from machine `m` (maintained by
    /// execution backends).
    pub fn on_send(&mut self, m: MachineId, bytes: u64) {
        let mm = &mut self.per_machine[m.index()];
        mm.messages_out += 1;
        mm.bytes_out += bytes;
    }

    /// Record `d` of CPU time consumed on machine `m` (maintained by
    /// execution backends).
    pub fn on_busy(&mut self, m: MachineId, d: SimDuration) {
        self.per_machine[m.index()].busy += d;
    }

    /// Merge a worker shard into this sink.
    ///
    /// The threaded runtime gives each worker thread a private `Metrics`
    /// shard (full machine vector, but the worker only ever writes its own
    /// machine's row) so handlers never contend on a global lock; the
    /// shards are folded together here once the run completes. Counters
    /// add; gauges take the max (only one shard ever wrote a non-zero
    /// value per machine); the progress timeline is re-sorted by time.
    pub fn absorb(&mut self, other: &Metrics) {
        while self.per_machine.len() < other.per_machine.len() {
            self.add_machine();
        }
        for (mine, theirs) in self.per_machine.iter_mut().zip(&other.per_machine) {
            mine.messages_in += theirs.messages_in;
            mine.messages_out += theirs.messages_out;
            mine.bytes_in += theirs.bytes_in;
            mine.bytes_out += theirs.bytes_out;
            mine.busy += theirs.busy;
            mine.stored_bytes = mine.stored_bytes.max(theirs.stored_bytes);
            mine.peak_stored_bytes = mine.peak_stored_bytes.max(theirs.peak_stored_bytes);
            mine.spilled_bytes = mine.spilled_bytes.max(theirs.spilled_bytes);
            // Single-writer per machine: the owning shard's value wins.
            mine.evicted_bytes = mine.evicted_bytes.max(theirs.evicted_bytes);
            mine.window_tuples = mine.window_tuples.max(theirs.window_tuples);
        }
        self.events += other.events;
        self.last_event_at = self.last_event_at.max(other.last_event_at);
        self.data_processed += other.data_processed;
        self.progress.extend(other.progress.iter().copied());
        self.progress.sort_by_key(|p| (p.at, p.processed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_gauges_track_peak() {
        let mut m = Metrics::default();
        m.add_machine();
        m.add_machine();
        m.set_stored(MachineId(0), 100);
        m.set_stored(MachineId(0), 40);
        m.set_stored(MachineId(1), 70);
        assert_eq!(m.machine(MachineId(0)).stored_bytes, 40);
        assert_eq!(m.machine(MachineId(0)).peak_stored_bytes, 100);
        assert_eq!(m.total_stored_bytes(), 110);
        assert_eq!(m.max_stored_bytes(), 70);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut m = Metrics::default();
        m.add_machine();
        m.on_send(MachineId(0), 10);
        m.on_send(MachineId(0), 5);
        m.on_arrive(MachineId(0), 7);
        assert_eq!(m.machine(MachineId(0)).messages_out, 2);
        assert_eq!(m.machine(MachineId(0)).bytes_out, 15);
        assert_eq!(m.machine(MachineId(0)).bytes_in, 7);
        assert_eq!(m.total_bytes_sent(), 15);
        assert_eq!(m.total_messages(), 2);
    }

    #[test]
    fn shared_gauges_give_shards_a_cluster_view() {
        let shared = SharedGauges::new(2);
        // Two shards, as the threaded runtime would build them.
        let shard = |_: usize| {
            let mut m = Metrics::default();
            m.add_machine();
            m.add_machine();
            m.sample_spacing = 2;
            m.install_shared(Arc::clone(&shared));
            m
        };
        let (mut a, mut b) = (shard(0), shard(1));
        a.set_stored(MachineId(0), 100);
        b.set_stored(MachineId(1), 70);
        // Each shard now sees the *other* machine's gauge too.
        assert_eq!(a.stored_bytes_of(MachineId(1)), 70);
        assert_eq!(b.stored_bytes_of(MachineId(0)), 100);
        assert_eq!(a.total_stored_bytes(), 170);
        assert_eq!(b.max_stored_bytes(), 100);
        // Progress counting is cluster-wide, and each boundary is claimed
        // by exactly one shard.
        a.note_data_processed(1, SimTime(1));
        b.note_data_processed(1, SimTime(2));
        b.note_data_processed(1, SimTime(3));
        a.note_data_processed(1, SimTime(4));
        assert_eq!(shared.data_processed(), 4);
        let mut merged = Metrics::default();
        merged.absorb(&a);
        merged.absorb(&b);
        let processed: Vec<u64> = merged.progress.iter().map(|p| p.processed).collect();
        assert_eq!(processed, vec![1, 3], "one claim per boundary");
    }

    #[test]
    fn busy_max_is_per_machine() {
        let mut m = Metrics::default();
        m.add_machine();
        m.add_machine();
        m.on_busy(MachineId(0), SimDuration::from_micros(5));
        m.on_busy(MachineId(0), SimDuration::from_micros(5));
        m.on_busy(MachineId(1), SimDuration::from_micros(7));
        assert_eq!(m.max_busy().as_micros(), 10);
    }
}
