//! Tasks: the unit of computation hosted on simulated machines, and the
//! context through which they interact with the world.

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Identifies a task registered with the simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The raw index of this task.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Scheduling class of a message, used by the machine's weighted service
/// policy.
///
/// * `Control` messages (epoch-change signals, acks) always jump the queue —
///   the paper requires reshufflers/joiners to react to mapping-change
///   signals promptly.
/// * `Migration` messages are serviced at twice the rate of `Data` while
///   both queues are non-empty (the premise of Theorem 4.6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgClass {
    /// Signals and acknowledgements; always serviced first.
    Control,
    /// Regular stream tuples.
    Data,
    /// State relocated between joiners during a migration.
    Migration,
}

/// A message type usable by the simulator: it must price its wire size and
/// declare its scheduling class.
pub trait SimMessage: Sized {
    /// Wire size in bytes (used for NIC serialisation and traffic metrics).
    fn bytes(&self) -> u64;
    /// Scheduling class (see [`MsgClass`]).
    fn class(&self) -> MsgClass;
    /// Number of logical stream tuples this message carries. Batched data
    /// planes coalesce many tuples into one message; backends that bound
    /// queues or weight their service policy account in these units so a
    /// 64-tuple batch is not budgeted like a single tuple. Non-batch
    /// messages (signals, acks, credits) count as 1.
    fn tuples(&self) -> u64 {
        1
    }
}

/// Object-safe downcasting support, blanket-implemented for all `'static`
/// types so [`Process`] implementors get it for free.
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: std::any::Any> AsAny for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A task: a deterministic state machine reacting to messages and timers.
///
/// Handlers return the virtual CPU time the work consumed; the hosting
/// machine stays busy for that long before servicing its next message.
pub trait Process<M: SimMessage>: AsAny {
    /// Handle a message delivered from `from`. Returns the CPU cost.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: TaskId, msg: M) -> SimDuration;

    /// Handle a timer previously scheduled through [`Ctx::schedule`].
    /// Returns the CPU cost. Default: ignore, free of charge.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _key: u64) -> SimDuration {
        SimDuration::ZERO
    }
}

/// An outgoing effect recorded by a handler, applied by the hosting
/// backend after the handler returns: the simulator stamps sends at
/// handler completion time; the threaded runtime pushes them into the
/// destination mailboxes.
pub enum Effect<M> {
    /// Send `msg` to `to` (FIFO per (sender, receiver, class)).
    Send {
        /// Destination task.
        to: TaskId,
        /// The message.
        msg: M,
    },
    /// Schedule [`Process::on_timer`] on the emitting task after `delay`.
    Timer {
        /// Delay from handler completion.
        delay: SimDuration,
        /// Key passed back to `on_timer`.
        key: u64,
    },
    /// Acquire execution resources for a machine registered as deferred
    /// (trigger-time provisioning): the simulator marks the machine live,
    /// the threaded runtime spawns its worker thread. Effects apply in
    /// emission order, so a handler that provisions first may message the
    /// freshly provisioned machine in the same handler.
    Provision {
        /// The machine to bring up.
        machine: crate::machine::MachineId,
    },
    /// Release a machine's execution resources. Backends first drain the
    /// machine behind a quiesce barrier — queued and straggler work is
    /// still serviced — and then release for real: the threaded runtime
    /// lets the worker thread exit, the TCP backend ends the worker
    /// process. Emit only when the protocol guarantees no peer will send
    /// to the machine again (in the operator layer: after the
    /// contraction's final ack). The machine may be re-provisioned later.
    Retire {
        /// The machine to hand back.
        machine: crate::machine::MachineId,
    },
}

/// The execution context handed to a task while it runs.
///
/// Sends are buffered and stamped at handler completion time (start +
/// returned cost), which models "the CPU finishes the work, then the NIC
/// picks up the output".
pub struct Ctx<'a, M: SimMessage> {
    pub(crate) now: SimTime,
    pub(crate) self_id: TaskId,
    pub(crate) effects: Vec<Effect<M>>,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) stopped: &'a mut bool,
}

impl<'a, M: SimMessage> Ctx<'a, M> {
    /// Build a context for one handler invocation. Execution backends
    /// (the simulator, `aoj-runtime`'s threaded workers) construct one
    /// per delivered message or fired timer and apply the buffered
    /// effects after the handler returns.
    pub fn new(
        now: SimTime,
        self_id: TaskId,
        metrics: &'a mut Metrics,
        stopped: &'a mut bool,
    ) -> Ctx<'a, M> {
        Ctx {
            now,
            self_id,
            effects: Vec::new(),
            metrics,
            stopped,
        }
    }

    /// Drain the effects buffered by the handler, in emission order.
    pub fn take_effects(&mut self) -> Vec<Effect<M>> {
        std::mem::take(&mut self.effects)
    }

    /// Virtual time at which the handler started executing.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the task currently executing.
    #[inline]
    pub fn self_id(&self) -> TaskId {
        self.self_id
    }

    /// Send `msg` to `to`. Delivery pays NIC serialisation plus propagation
    /// latency; per-(sender, receiver) order is FIFO.
    #[inline]
    pub fn send(&mut self, to: TaskId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Schedule [`Process::on_timer`] on this task after `delay`.
    #[inline]
    pub fn schedule(&mut self, delay: SimDuration, key: u64) {
        self.effects.push(Effect::Timer { delay, key });
    }

    /// Acquire execution resources for `machine` (trigger-time
    /// provisioning). Call before sending to the machine's tasks —
    /// effects apply in emission order.
    #[inline]
    pub fn provision(&mut self, machine: crate::machine::MachineId) {
        self.effects.push(Effect::Provision { machine });
    }

    /// Release `machine`'s execution resources (see
    /// [`Effect::Retire`] for the drain semantics).
    #[inline]
    pub fn retire(&mut self, machine: crate::machine::MachineId) {
        self.effects.push(Effect::Retire { machine });
    }

    /// Access the global metrics sink (e.g. to record joiner storage).
    #[inline]
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Request the simulation to stop after this handler returns. Used by
    /// drivers when the experiment's completion condition is met.
    #[inline]
    pub fn stop(&mut self) {
        *self.stopped = true;
    }
}
