//! The network model: bandwidth-limited sender NICs plus constant
//! propagation latency.
//!
//! Every machine owns one egress link. Outgoing messages serialise on it in
//! send order (`nic_free_at` advances by `bytes / bandwidth`), then arrive
//! after a constant propagation latency. Two consequences matter to the
//! layers above:
//!
//! 1. every (sender, receiver) channel is FIFO, which the epoch protocol of
//!    the paper (§4.3.1) assumes, and
//! 2. a joiner bulk-sending migration state occupies its link for a time
//!    proportional to the state size — exactly the `2|R|/n time units` cost
//!    Lemma 4.4 accounts for.

use crate::time::{SimDuration, SimTime};

/// Network configuration shared by all links.
///
/// The egress cost of a message is split into a **per-message** term
/// (`per_message_overhead_bytes` of framing plus `per_message_us` of
/// fixed NIC processing) and a **per-byte** term (`bytes / bytes_per_us`
/// of serialisation). The split is what makes batching visible in
/// virtual time: coalescing `k` tuples into one message pays the
/// per-message term once instead of `k` times while the per-byte term is
/// unchanged.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// One-way propagation latency per message, in microseconds.
    pub latency_us: u64,
    /// Egress bandwidth per machine, in bytes per microsecond.
    /// 1 Gbit/s Ethernet ≈ 125 bytes/µs.
    pub bytes_per_us: u64,
    /// Fixed per-message framing overhead in bytes (headers etc.).
    pub per_message_overhead_bytes: u64,
    /// Fixed per-message NIC processing time in microseconds (descriptor
    /// ring work, interrupt amortisation), occupying the link like the
    /// serialisation time does. Defaults to 0, which preserves the
    /// pre-split cost model exactly; the framing bytes already impose a
    /// per-message floor of `overhead / bandwidth`.
    pub per_message_us: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency_us: 100,
            bytes_per_us: 125,
            per_message_overhead_bytes: 32,
            per_message_us: 0,
        }
    }
}

impl NetworkConfig {
    /// Time the egress link is occupied transmitting `bytes`, rounded up
    /// to whole microseconds (for coarse estimates; the [`Nic`] itself
    /// accounts for fractional-microsecond occupancy exactly).
    #[inline]
    pub fn transmit_time(&self, bytes: u64) -> SimDuration {
        let wire = bytes + self.per_message_overhead_bytes;
        SimDuration(self.per_message_us + wire.div_ceil(self.bytes_per_us))
    }
}

/// Egress link state for one machine.
///
/// Occupancy is tracked at byte granularity: `debt_bytes` carries the
/// sub-microsecond remainder between transmissions so that a stream of
/// small messages occupies exactly `total_bytes / bandwidth` — without it,
/// per-message rounding would add up to an artificial 1 µs-per-message
/// floor that throttles the whole cluster through any single stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct Nic {
    /// Earliest time the link is free to start a new transmission.
    pub free_at: SimTime,
    /// Bytes already paid for in `free_at` but not yet "used" (remainder
    /// of integer division by the bandwidth).
    debt_bytes: u64,
}

impl Nic {
    /// Enqueue a transmission of `bytes` starting no earlier than `now`.
    /// Returns the arrival time at the receiver.
    pub fn transmit(&mut self, now: SimTime, bytes: u64, cfg: &NetworkConfig) -> SimTime {
        let start = if self.free_at >= now {
            // Back-to-back transmissions: the fractional remainder carries.
            self.free_at
        } else {
            // Idle link: the fractional remainder does not carry across
            // idle gaps.
            self.debt_bytes = 0;
            now
        };
        let total = self.debt_bytes + bytes + self.per_message_overhead(cfg);
        let whole_us = total / cfg.bytes_per_us;
        self.debt_bytes = total % cfg.bytes_per_us;
        // The fixed per-message NIC time occupies the link like the
        // serialisation time (it cannot overlap the next transmission).
        let done = start + SimDuration(whole_us + cfg.per_message_us);
        self.free_at = done;
        done + SimDuration(cfg.latency_us)
    }

    #[inline]
    fn per_message_overhead(&self, cfg: &NetworkConfig) -> u64 {
        cfg.per_message_overhead_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_serialises_in_send_order() {
        let cfg = NetworkConfig {
            latency_us: 10,
            bytes_per_us: 100,
            per_message_overhead_bytes: 0,
            per_message_us: 0,
        };
        let mut nic = Nic::default();
        // 1000 bytes at 100 B/us = 10us on the wire, +10us latency.
        let a1 = nic.transmit(SimTime(0), 1000, &cfg);
        assert_eq!(a1.as_micros(), 20);
        // Second send at t=0 must wait for the link: starts at 10.
        let a2 = nic.transmit(SimTime(0), 1000, &cfg);
        assert_eq!(a2.as_micros(), 30);
        // A later send after the link frees starts immediately.
        let a3 = nic.transmit(SimTime(100), 100, &cfg);
        assert_eq!(a3.as_micros(), 111);
    }

    #[test]
    fn small_messages_share_fractional_occupancy() {
        // 10 back-to-back 10-byte messages at 100 B/us occupy 1us total,
        // not 10us: the link must not round each message up.
        let cfg = NetworkConfig {
            latency_us: 0,
            bytes_per_us: 100,
            per_message_overhead_bytes: 0,
            per_message_us: 0,
        };
        let mut nic = Nic::default();
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            last = nic.transmit(SimTime(0), 10, &cfg);
        }
        assert_eq!(last.as_micros(), 1, "100 bytes total = 1us of link time");
        assert_eq!(nic.free_at.as_micros(), 1);
    }

    #[test]
    fn debt_resets_across_idle_gaps() {
        let cfg = NetworkConfig {
            latency_us: 0,
            bytes_per_us: 100,
            per_message_overhead_bytes: 0,
            per_message_us: 0,
        };
        let mut nic = Nic::default();
        nic.transmit(SimTime(0), 50, &cfg); // half a us of debt
                                            // Long idle gap: the fraction must not haunt the next message.
        let a = nic.transmit(SimTime(1000), 100, &cfg);
        assert_eq!(a.as_micros(), 1001);
    }

    #[test]
    fn fifo_per_channel() {
        // Arrival times are monotone in send order regardless of sizes,
        // because latency is constant and the link serialises.
        let cfg = NetworkConfig::default();
        let mut nic = Nic::default();
        let mut last = SimTime::ZERO;
        for bytes in [5000, 10, 900, 1, 123456] {
            let t = nic.transmit(SimTime(3), bytes, &cfg);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn per_message_term_is_paid_once_per_message() {
        // 10 messages of 100 bytes each: per-byte cost 1us each, plus a
        // 3us fixed NIC term per message — batching the same bytes into
        // one message would pay the fixed term once.
        let cfg = NetworkConfig {
            latency_us: 0,
            bytes_per_us: 100,
            per_message_overhead_bytes: 0,
            per_message_us: 3,
        };
        let mut nic = Nic::default();
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            last = nic.transmit(SimTime(0), 100, &cfg);
        }
        assert_eq!(last.as_micros(), 40, "10 × (1us bytes + 3us fixed)");
        let mut batched = Nic::default();
        let one = batched.transmit(SimTime(0), 1000, &cfg);
        assert_eq!(one.as_micros(), 13, "one message pays the term once");
    }

    #[test]
    fn transmit_time_rounds_up() {
        let cfg = NetworkConfig {
            latency_us: 0,
            bytes_per_us: 125,
            per_message_overhead_bytes: 0,
            per_message_us: 0,
        };
        assert_eq!(cfg.transmit_time(1).as_micros(), 1);
        assert_eq!(cfg.transmit_time(125).as_micros(), 1);
        assert_eq!(cfg.transmit_time(126).as_micros(), 2);
    }
}
