//! The event queue: a binary heap keyed by `(time, sequence)` so that
//! simultaneous events pop in insertion order, making runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::machine::MachineId;
use crate::task::TaskId;
use crate::time::SimTime;

/// What happens when an event fires.
pub(crate) enum EventKind<M> {
    /// A message arrives at the destination machine's mailbox.
    Arrive { from: TaskId, to: TaskId, msg: M },
    /// The machine's CPU is free: service the next queued message.
    ProcessNext { machine: MachineId },
    /// A task timer fires.
    Timer { task: TaskId, key: u64 },
    /// A scheduled fault fires: the machine dies abruptly.
    Kill { machine: MachineId },
}

pub(crate) struct Event<M> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            SimTime(5),
            EventKind::Timer {
                task: TaskId(0),
                key: 50,
            },
        );
        q.push(
            SimTime(1),
            EventKind::Timer {
                task: TaskId(0),
                key: 10,
            },
        );
        q.push(
            SimTime(5),
            EventKind::Timer {
                task: TaskId(0),
                key: 51,
            },
        );
        let keys: Vec<u64> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Timer { key, .. } => key,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(keys, vec![10, 50, 51]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
