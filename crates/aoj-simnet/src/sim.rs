//! The simulation driver: owns machines, tasks, the event queue and the
//! metrics, and runs events to quiescence.

use std::any::Any;

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::exec::ExecBackend;
use crate::machine::{Machine, MachineId, Queued};
use crate::metrics::Metrics;
use crate::network::NetworkConfig;
use crate::task::{Ctx, Effect, MsgClass, Process, SimMessage, TaskId};
use crate::time::SimTime;

/// Work items queued at a machine: either an arrived message or a fired
/// timer waiting for the CPU. Timers are serviced with control priority.
enum Work<M> {
    Msg(M),
    Timer(u64),
}

/// Provisioning state of a machine slot (trigger-time provisioning).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MachineState {
    /// Holding execution resources.
    Active,
    /// Registered but never provisioned: delivering work to it panics.
    Deferred,
    /// Previously active, resources handed back; straggler work still
    /// drains (see [`Effect::Retire`]) and a later provision revives it.
    Retired,
    /// Killed by a scheduled fault ([`Sim::schedule_kill`]): its queued
    /// work is gone and anything later delivered to it is dropped on
    /// the floor — the simulated analogue of a SIGKILL'd worker whose
    /// peers keep writing into a dead socket.
    Dead,
}

/// The simulator. See the crate docs for the model.
pub struct Sim<M: SimMessage> {
    cfg: SimConfig,
    /// Per-machine network parameters (defaults to `cfg.network`).
    machine_network: Vec<crate::network::NetworkConfig>,
    machines: Vec<Machine<Work<M>>>,
    machine_state: Vec<MachineState>,
    provisioned: usize,
    peak_provisioned: usize,
    tasks: Vec<Option<Box<dyn Process<M>>>>,
    task_machine: Vec<MachineId>,
    queue: EventQueue<M>,
    metrics: Metrics,
    now: SimTime,
    stopped: bool,
    deaths: Vec<(MachineId, SimTime)>,
}

impl<M: SimMessage + 'static> Sim<M> {
    /// Create an empty cluster.
    pub fn new(cfg: SimConfig) -> Self {
        Sim {
            cfg,
            machine_network: Vec::new(),
            machines: Vec::new(),
            machine_state: Vec::new(),
            provisioned: 0,
            peak_provisioned: 0,
            tasks: Vec::new(),
            task_machine: Vec::new(),
            queue: EventQueue::new(),
            metrics: Metrics::default(),
            now: SimTime::ZERO,
            stopped: false,
            deaths: Vec::new(),
        }
    }

    /// Add a machine to the cluster.
    pub fn add_machine(&mut self) -> MachineId {
        self.add_machine_with_network(self.cfg.network)
    }

    /// Add a machine with its own network parameters (e.g. a source stage
    /// that models `J` parallel upstream feeds rather than one NIC).
    pub fn add_machine_with_network(&mut self, network: NetworkConfig) -> MachineId {
        let id = self.push_machine(network);
        self.machine_state[id.index()] = MachineState::Active;
        self.provisioned += 1;
        self.peak_provisioned = self.peak_provisioned.max(self.provisioned);
        id
    }

    /// Register a machine slot whose execution resources arrive only with
    /// a mid-run [`Effect::Provision`]; until then, delivering any work to
    /// it is a protocol error (and panics).
    pub fn add_deferred_machine(&mut self) -> MachineId {
        self.push_machine(self.cfg.network)
    }

    fn push_machine(&mut self, network: NetworkConfig) -> MachineId {
        let id = MachineId(self.machines.len());
        self.machines.push(Machine::new(self.cfg.machine));
        self.machine_network.push(network);
        self.machine_state.push(MachineState::Deferred);
        self.metrics.add_machine();
        id
    }

    /// Machines currently holding execution resources.
    pub fn provisioned_machines(&self) -> usize {
        self.provisioned
    }

    /// High-water mark of simultaneously provisioned machines.
    pub fn peak_provisioned_machines(&self) -> usize {
        self.peak_provisioned
    }

    /// Register a task hosted on `machine`.
    pub fn add_task(&mut self, machine: MachineId, task: Box<dyn Process<M>>) -> TaskId {
        assert!(machine.index() < self.machines.len(), "unknown machine");
        let id = TaskId(self.tasks.len());
        self.tasks.push(Some(task));
        self.task_machine.push(machine);
        id
    }

    /// The machine hosting `task`.
    pub fn machine_of(&self, task: TaskId) -> MachineId {
        self.task_machine[task.index()]
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Inject a message from outside the simulation (e.g. bootstrap), to be
    /// delivered at the current virtual time without paying network costs.
    pub fn inject(&mut self, from: TaskId, to: TaskId, msg: M) {
        let at = self.now;
        self.queue.push(at, EventKind::Arrive { from, to, msg });
    }

    /// Inject a message arriving at an explicit virtual time.
    pub fn inject_at(&mut self, at: SimTime, from: TaskId, to: TaskId, msg: M) {
        self.queue.push(at, EventKind::Arrive { from, to, msg });
    }

    /// Schedule a timer for `task` at an explicit virtual time (bootstrap
    /// helper for sources).
    pub fn start_timer_at(&mut self, at: SimTime, task: TaskId, key: u64) {
        self.queue.push(at, EventKind::Timer { task, key });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule a deterministic fault: `machine` dies abruptly at
    /// virtual time `at`. Like a real SIGKILL, the victim gets no
    /// goodbye — its queued work vanishes and later deliveries to it
    /// drop silently (no panic, no back-pressure). Idempotent per
    /// machine; kills are ordered against all other events by the
    /// `(time, sequence)` queue, so runs stay reproducible.
    pub fn schedule_kill(&mut self, machine: MachineId, at: SimTime) {
        self.queue.push(at, EventKind::Kill { machine });
    }

    /// Kill `machine` at the current virtual time (the between-pumps
    /// form used to lower tuple-count and checkpoint-count fault
    /// triggers, which only the session driver can observe).
    pub fn kill_now(&mut self, machine: MachineId) {
        self.apply_kill(machine);
    }

    /// Machines that died, in kill order, with their times of death.
    pub fn deaths(&self) -> &[(MachineId, SimTime)] {
        &self.deaths
    }

    fn apply_kill(&mut self, m: MachineId) {
        let state = &mut self.machine_state[m.index()];
        if *state == MachineState::Dead {
            return;
        }
        if *state == MachineState::Active {
            self.provisioned -= 1;
        }
        *state = MachineState::Dead;
        // Queued work dies with the machine; a stale ProcessNext event
        // is defused by the Dead check in `process_next`.
        self.machines[m.index()] = Machine::new(self.cfg.machine);
        self.deaths.push((m, self.now));
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the metrics (drivers may reset gauges between
    /// measurement windows).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Mutable access to a task by concrete type. Panics if the id is wrong
    /// or the type does not match — these are programming errors in the
    /// experiment driver, not recoverable conditions.
    pub fn task_mut<T: Process<M> + Any>(&mut self, id: TaskId) -> &mut T {
        let boxed = self.tasks[id.index()]
            .as_mut()
            .expect("task is currently executing");
        boxed
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("task type mismatch")
    }

    /// Shared access to a task by concrete type.
    pub fn task_ref<T: Process<M> + Any>(&self, id: TaskId) -> &T {
        let boxed = self.tasks[id.index()]
            .as_ref()
            .expect("task is currently executing");
        boxed
            .as_any()
            .downcast_ref::<T>()
            .expect("task type mismatch")
    }

    /// The external-event pump: run every currently queued event to
    /// quiescence and return the virtual time reached.
    ///
    /// [`run`](Sim::run) is re-entrant, and this alias is the live-session
    /// shape of that fact: a caller may inject new messages or bootstrap
    /// timers *after* a previous pump returned (e.g. a `JoinSession`
    /// pushing freshly arrived tuples into a source task's ingest queue)
    /// and pump again — virtual time continues from where it stopped, and
    /// the interleaving stays deterministic because all external input is
    /// sequenced through the single pumping thread.
    pub fn pump(&mut self) -> SimTime {
        self.run()
    }

    /// Run until quiescence (empty event queue), a task calls
    /// [`Ctx::stop`], or the configured deadline passes. Returns the final
    /// virtual time. Re-entrant: more events may be injected after it
    /// returns and the simulation resumed (see [`pump`](Sim::pump)).
    pub fn run(&mut self) -> SimTime {
        while let Some(ev) = self.queue.pop() {
            if self.stopped {
                break;
            }
            if let Some(deadline) = self.cfg.deadline {
                if ev.at > deadline {
                    self.now = deadline;
                    break;
                }
            }
            self.now = ev.at;
            self.metrics.events += 1;
            self.metrics.last_event_at = ev.at;
            match ev.kind {
                EventKind::Arrive { from, to, msg } => {
                    let m = self.task_machine[to.index()];
                    self.metrics.on_arrive(m, msg.bytes());
                    let class = msg.class();
                    self.enqueue_work(
                        m,
                        class,
                        Queued {
                            from,
                            to,
                            msg: Work::Msg(msg),
                        },
                    );
                }
                EventKind::ProcessNext { machine } => {
                    self.process_next(machine);
                }
                EventKind::Timer { task, key } => {
                    let m = self.task_machine[task.index()];
                    self.enqueue_work(
                        m,
                        MsgClass::Control,
                        Queued {
                            from: task,
                            to: task,
                            msg: Work::Timer(key),
                        },
                    );
                }
                EventKind::Kill { machine } => {
                    self.apply_kill(machine);
                }
            }
        }
        self.now
    }

    fn enqueue_work(&mut self, m: MachineId, class: MsgClass, item: Queued<Work<M>>) {
        if self.machine_state[m.index()] == MachineState::Dead {
            // Deliveries to a dead machine vanish, like bytes written
            // into a SIGKILL'd worker's socket.
            return;
        }
        assert!(
            self.machine_state[m.index()] != MachineState::Deferred,
            "work delivered to machine {} before it was provisioned \
             (trigger-time provisioning protocol error)",
            m.index()
        );
        let machine = &mut self.machines[m.index()];
        machine.enqueue(class, item);
        if !machine.scheduled {
            machine.scheduled = true;
            let start = if machine.busy_until > self.now {
                machine.busy_until
            } else {
                self.now
            };
            self.queue
                .push(start, EventKind::ProcessNext { machine: m });
        }
    }

    fn process_next(&mut self, mid: MachineId) {
        if self.machine_state[mid.index()] == MachineState::Dead {
            return;
        }
        let machine = &mut self.machines[mid.index()];
        let item = match machine.pop_next() {
            Some(item) => item,
            None => {
                machine.scheduled = false;
                return;
            }
        };
        let to = item.to;
        // Take the task out so the handler can borrow both itself and a Ctx.
        let mut task = self.tasks[to.index()].take().expect("task re-entered");
        let mut stopped = self.stopped;
        let start = self.now;
        let mut ctx = Ctx {
            now: start,
            self_id: to,
            effects: Vec::new(),
            metrics: &mut self.metrics,
            stopped: &mut stopped,
        };
        let cost = match item.msg {
            Work::Msg(msg) => task.on_message(&mut ctx, item.from, msg),
            Work::Timer(key) => task.on_timer(&mut ctx, key),
        };
        let effects = std::mem::take(&mut ctx.effects);
        drop(ctx);
        self.stopped = stopped;
        self.tasks[to.index()] = Some(task);
        let done = start + cost;
        self.metrics.on_busy(mid, cost);
        self.machines[mid.index()].busy_until = done;

        for effect in effects {
            match effect {
                Effect::Send { to: dst, msg } => {
                    let dst_machine = self.task_machine[dst.index()];
                    if dst_machine == mid {
                        // Loopback: no NIC occupancy, no network metrics.
                        self.queue.push(
                            done,
                            EventKind::Arrive {
                                from: to,
                                to: dst,
                                msg,
                            },
                        );
                    } else {
                        let bytes = msg.bytes();
                        self.metrics.on_send(mid, bytes);
                        let net = self.machine_network[mid.index()];
                        let arrival = self.machines[mid.index()].nic.transmit(done, bytes, &net);
                        self.queue.push(
                            arrival,
                            EventKind::Arrive {
                                from: to,
                                to: dst,
                                msg,
                            },
                        );
                    }
                }
                Effect::Timer { delay, key } => {
                    self.queue
                        .push(done + delay, EventKind::Timer { task: to, key });
                }
                Effect::Provision { machine } => {
                    let state = &mut self.machine_state[machine.index()];
                    assert!(
                        *state != MachineState::Active,
                        "machine {} provisioned twice",
                        machine.index()
                    );
                    *state = MachineState::Active;
                    self.provisioned += 1;
                    self.peak_provisioned = self.peak_provisioned.max(self.provisioned);
                }
                Effect::Retire { machine } => {
                    let state = &mut self.machine_state[machine.index()];
                    assert_eq!(
                        *state,
                        MachineState::Active,
                        "machine {} retired while not active",
                        machine.index()
                    );
                    *state = MachineState::Retired;
                    self.provisioned -= 1;
                }
            }
        }

        // Keep servicing the queue.
        let machine = &mut self.machines[mid.index()];
        if machine.queue_len() > 0 {
            self.queue
                .push(done, EventKind::ProcessNext { machine: mid });
        } else {
            machine.scheduled = false;
        }
    }
}

impl<M: SimMessage + 'static> ExecBackend<M> for Sim<M> {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn add_machine(&mut self) -> MachineId {
        Sim::add_machine(self)
    }

    fn add_machine_with_network(&mut self, network: NetworkConfig) -> MachineId {
        Sim::add_machine_with_network(self, network)
    }

    fn add_deferred_machine(&mut self) -> MachineId {
        Sim::add_deferred_machine(self)
    }

    fn provisioned_machines(&self) -> usize {
        Sim::provisioned_machines(self)
    }

    fn peak_provisioned_machines(&self) -> usize {
        Sim::peak_provisioned_machines(self)
    }

    fn add_task(&mut self, machine: MachineId, task: Box<dyn Process<M> + Send>) -> TaskId {
        Sim::add_task(self, machine, task)
    }

    fn start_timer_at(&mut self, at: SimTime, task: TaskId, key: u64) {
        Sim::start_timer_at(self, at, task, key)
    }

    fn metrics(&self) -> &Metrics {
        Sim::metrics(self)
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        Sim::metrics_mut(self)
    }

    fn run(&mut self) -> SimTime {
        Sim::run(self)
    }

    fn task_any(&self, id: TaskId) -> &dyn Any {
        self.tasks[id.index()]
            .as_ref()
            .expect("task is currently executing")
            .as_any()
    }
}
