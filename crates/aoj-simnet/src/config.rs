//! Simulation-wide configuration: the network parameters and the CPU cost
//! model used by operator tasks to price their work.

use crate::machine::MachineConfig;
use crate::network::NetworkConfig;
use crate::time::SimDuration;

/// CPU cost model for join-operator work, in microseconds.
///
/// The absolute values are calibrated loosely against the paper's testbed
/// (3 GHz Xeons, JVM operators): what matters for reproducing the paper's
/// *shapes* is the relative cost of receiving a tuple, indexing it, probing,
/// emitting matches, and the large multiplier once state spills to disk
/// (§3.3 observes overflow "hinders performance severely" — two orders of
/// magnitude in Fig 6c).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Demarshalling + bookkeeping per received data message.
    pub recv_overhead_us: u64,
    /// Appending a tuple to local storage and updating the index.
    pub store_us: u64,
    /// Probing the opposite relation's index (hash or tree lookup).
    pub probe_us: u64,
    /// Per candidate tuple scanned during a probe (e.g. within a band or a
    /// hash bucket).
    pub per_candidate_us_hundredths: u64,
    /// Emitting one output match.
    pub per_match_us_hundredths: u64,
    /// Multiplier applied to `store`/`probe` work for state beyond the RAM
    /// budget (simulated BerkeleyDB-style disk tier).
    pub spill_penalty: u64,
    /// Handling a control signal.
    pub control_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            recv_overhead_us: 2,
            store_us: 1,
            probe_us: 1,
            per_candidate_us_hundredths: 10,
            per_match_us_hundredths: 20,
            spill_penalty: 20,
            control_us: 1,
        }
    }
}

impl CostModel {
    /// Cost of scanning `candidates` index entries and emitting `matches`.
    #[inline]
    pub fn probe_cost(&self, candidates: u64, matches: u64) -> SimDuration {
        SimDuration(
            self.probe_us
                + (candidates * self.per_candidate_us_hundredths) / 100
                + (matches * self.per_match_us_hundredths) / 100,
        )
    }

    /// Cost of storing one tuple, with `spilled == true` if the local store
    /// has exceeded its RAM budget.
    #[inline]
    pub fn store_cost(&self, spilled: bool) -> SimDuration {
        if spilled {
            SimDuration(self.store_us * self.spill_penalty)
        } else {
            SimDuration(self.store_us)
        }
    }

    /// Cost of probing **and storing** a coalesced batch of `n` data
    /// tuples that together scanned `candidates` index entries and
    /// emitted `matches`: the fixed probe/store overheads are per tuple,
    /// the scan/emit terms follow the accumulated statistics. A batch of
    /// one prices exactly like `probe_cost(c, m) + store_cost(false)`,
    /// so `batch_tuples = 1` reproduces the per-tuple plane's timeline.
    #[inline]
    pub fn batch_cost(&self, n: u64, candidates: u64, matches: u64) -> SimDuration {
        SimDuration(
            n * (self.probe_us + self.store_us)
                + (candidates * self.per_candidate_us_hundredths) / 100
                + (matches * self.per_match_us_hundredths) / 100,
        )
    }
}

/// Top-level simulator configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimConfig {
    /// Network parameters (latency, bandwidth, framing overhead).
    pub network: NetworkConfig,
    /// Per-machine scheduling parameters.
    pub machine: MachineConfig,
    /// Optional hard stop: the simulation aborts past this virtual time.
    /// `None` runs to quiescence.
    pub deadline: Option<crate::time::SimTime>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_cost_scales_with_candidates_and_matches() {
        let cm = CostModel::default();
        let base = cm.probe_cost(0, 0);
        assert_eq!(base.as_micros(), cm.probe_us);
        let heavy = cm.probe_cost(1000, 500);
        assert_eq!(heavy.as_micros(), cm.probe_us + 100 + 100);
    }

    #[test]
    fn spill_penalty_applies() {
        let cm = CostModel::default();
        assert_eq!(cm.store_cost(false).as_micros(), 1);
        assert_eq!(cm.store_cost(true).as_micros(), cm.spill_penalty);
    }
}
