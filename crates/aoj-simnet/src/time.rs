//! Virtual time. The simulator counts in integer microseconds so arithmetic
//! is exact and runs are reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since simulation start.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (lossy, for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Elapsed time since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Build from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1000)
    }

    /// Build from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds in this duration.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration (lossy, for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiply by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_millis(3) + SimDuration::from_micros(21);
        assert_eq!(t.as_micros(), 3021);
        assert_eq!(t.since(SimTime(21)).as_micros(), 3000);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert!((SimDuration::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert_eq!(
            SimDuration::from_micros(7).saturating_mul(3).as_micros(),
            21
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }
}
