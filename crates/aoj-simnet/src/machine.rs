//! Simulated machines: a CPU serving per-class message queues under a
//! weighted policy, and an egress NIC.

use std::collections::VecDeque;

use crate::network::Nic;
use crate::task::{MsgClass, TaskId};
use crate::time::SimTime;

/// Identifies a machine in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MachineId(pub usize);

impl MachineId {
    /// The raw index of this machine.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Per-machine knobs.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// How many `Migration`-class messages are serviced for every
    /// `Data`-class message while both queues are backlogged. The paper
    /// fixes this to 2 (§4.3.2): "We set the joiners to process migrated
    /// tuples at twice the rate of processing new incoming tuples."
    pub migration_weight: u32,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            migration_weight: 2,
        }
    }
}

/// A queued message awaiting CPU service.
pub(crate) struct Queued<M> {
    pub from: TaskId,
    pub to: TaskId,
    pub msg: M,
}

/// Internal machine state.
pub(crate) struct Machine<M> {
    pub cfg: MachineConfig,
    pub nic: Nic,
    /// CPU is busy until this time.
    pub busy_until: SimTime,
    /// True if a `ProcessNext` event is already scheduled.
    pub scheduled: bool,
    pub control_q: VecDeque<Queued<M>>,
    pub data_q: VecDeque<Queued<M>>,
    pub migration_q: VecDeque<Queued<M>>,
    /// Counts migration-class messages served since the last data-class
    /// message, implementing the 2:1 weighted service.
    pub migration_credit: u32,
}

impl<M> Machine<M> {
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            cfg,
            nic: Nic::default(),
            busy_until: SimTime::ZERO,
            scheduled: false,
            control_q: VecDeque::new(),
            data_q: VecDeque::new(),
            migration_q: VecDeque::new(),
            migration_credit: 0,
        }
    }

    pub fn enqueue(&mut self, class: MsgClass, item: Queued<M>) {
        match class {
            MsgClass::Control => self.control_q.push_back(item),
            MsgClass::Data => self.data_q.push_back(item),
            MsgClass::Migration => self.migration_q.push_back(item),
        }
    }

    pub fn queue_len(&self) -> usize {
        self.control_q.len() + self.data_q.len() + self.migration_q.len()
    }

    /// Pick the next message to service. Control preempts everything;
    /// migration is served `migration_weight` times per data message while
    /// both queues are non-empty; otherwise whichever queue has work.
    pub fn pop_next(&mut self) -> Option<Queued<M>> {
        if let Some(item) = self.control_q.pop_front() {
            return Some(item);
        }
        let has_data = !self.data_q.is_empty();
        let has_mig = !self.migration_q.is_empty();
        match (has_mig, has_data) {
            (false, false) => None,
            (true, false) => self.migration_q.pop_front(),
            (false, true) => {
                self.migration_credit = 0;
                self.data_q.pop_front()
            }
            (true, true) => {
                if self.migration_credit < self.cfg.migration_weight {
                    self.migration_credit += 1;
                    self.migration_q.pop_front()
                } else {
                    self.migration_credit = 0;
                    self.data_q.pop_front()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: usize) -> Queued<u32> {
        Queued {
            from: TaskId(0),
            to: TaskId(0),
            msg: n as u32,
        }
    }

    #[test]
    fn weighted_service_is_two_to_one() {
        let mut m: Machine<u32> = Machine::new(MachineConfig::default());
        for i in 0..6 {
            m.enqueue(MsgClass::Migration, q(100 + i));
        }
        for i in 0..3 {
            m.enqueue(MsgClass::Data, q(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| m.pop_next().map(|x| x.msg)).collect();
        // Pattern M,M,D repeated.
        assert_eq!(order, vec![100, 101, 0, 102, 103, 1, 104, 105, 2]);
    }

    #[test]
    fn control_preempts() {
        let mut m: Machine<u32> = Machine::new(MachineConfig::default());
        m.enqueue(MsgClass::Data, q(1));
        m.enqueue(MsgClass::Migration, q(2));
        m.enqueue(MsgClass::Control, q(3));
        assert_eq!(m.pop_next().unwrap().msg, 3);
    }

    #[test]
    fn drains_single_class() {
        let mut m: Machine<u32> = Machine::new(MachineConfig::default());
        for i in 0..4 {
            m.enqueue(MsgClass::Data, q(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| m.pop_next().map(|x| x.msg)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn migration_only_drains_fifo() {
        let mut m: Machine<u32> = Machine::new(MachineConfig::default());
        for i in 0..4 {
            m.enqueue(MsgClass::Migration, q(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| m.pop_next().map(|x| x.msg)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
