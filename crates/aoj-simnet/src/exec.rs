//! The pluggable execution backend abstraction.
//!
//! A [`Process`] task graph — machines hosting tasks that exchange
//! messages and timers — can execute on more than one substrate:
//!
//! * [`Sim`](crate::Sim): the deterministic discrete-event simulator in
//!   this crate, for bit-reproducible experiments in virtual time;
//! * `aoj_runtime::Runtime`: real OS threads with bounded, class-aware
//!   mailboxes, for wall-clock measurements.
//!
//! [`ExecBackend`] is the contract both implement, and what
//! `aoj_operators::driver` is generic over. Every backend guarantees the
//! two properties the operator layer relies on:
//!
//! 1. **Per-channel FIFO within a message class**: messages from task A
//!    to task B of the same [`MsgClass`](crate::MsgClass) are delivered
//!    in send order (the epoch protocol's ordering assumption, §4.3.1 of
//!    the paper);
//! 2. **Weighted class service**: control messages preempt, and
//!    migration-class messages are serviced at `migration_weight` times
//!    the data rate while both queues are backlogged (§4.3.2).
//!
//! Time is [`SimTime`] in both cases: virtual microseconds under the
//! simulator, wall-clock microseconds since `run()` under the threaded
//! runtime.

use std::any::Any;

use crate::machine::MachineId;
use crate::metrics::Metrics;
use crate::network::NetworkConfig;
use crate::task::{Process, SimMessage, TaskId};
use crate::time::SimTime;

/// A substrate that can host and run a task graph.
///
/// Topology building (machines, tasks, bootstrap timers) happens before
/// [`run`](ExecBackend::run); task state and metrics are inspected after
/// it returns.
pub trait ExecBackend<M: SimMessage + 'static> {
    /// Short label for reports ("sim", "threaded").
    fn backend_name(&self) -> &'static str;

    /// Add a machine with default network parameters.
    fn add_machine(&mut self) -> MachineId;

    /// Add a machine with explicit network parameters. Backends without a
    /// network model (real threads share memory) may ignore them.
    fn add_machine_with_network(&mut self, network: NetworkConfig) -> MachineId;

    /// Register a machine **slot** without acquiring its execution
    /// resources (trigger-time provisioning, §4.2.2): tasks may be added
    /// to it, but the backend dedicates no worker shard — no thread on
    /// the threaded runtime, no live machine in the simulator — until a
    /// task emits [`Effect::Provision`](crate::task::Effect::Provision)
    /// for it mid-run. Delivering work to a machine that was never
    /// provisioned is a protocol error. The default makes the slot eager
    /// (for backends without deferred support).
    fn add_deferred_machine(&mut self) -> MachineId {
        self.add_machine()
    }

    /// Machines currently holding execution resources: eager machines,
    /// plus deferred ones provisioned at trigger time, minus retired
    /// ones. Read after `run` to verify trigger-time provisioning.
    fn provisioned_machines(&self) -> usize;

    /// High-water mark of simultaneously provisioned machines over the
    /// run — the real resource footprint an elastic run paid for.
    fn peak_provisioned_machines(&self) -> usize;

    /// Register a task hosted on `machine`. Tasks must be `Send` because
    /// threaded backends move them onto worker threads.
    fn add_task(&mut self, machine: MachineId, task: Box<dyn Process<M> + Send>) -> TaskId;

    /// Schedule a bootstrap timer for `task` at time `at`.
    fn start_timer_at(&mut self, at: SimTime, task: TaskId, key: u64);

    /// The metrics sink (read after `run`; configure `sample_spacing`
    /// before it).
    fn metrics(&self) -> &Metrics;

    /// Whether tasks observe a globally consistent cluster view of the
    /// storage/progress gauges *during* the run — the readings behind
    /// progress/ILF timelines and the elastic controller's stored-state
    /// trigger. True for the simulator (one `Metrics`, one event at a
    /// time) and for sharded backends that install a
    /// [`SharedGauges`](crate::metrics::SharedGauges) overlay into every
    /// shard (the threaded runtime does). A backend whose shards have no
    /// shared overlay must return false so drivers suppress mid-run
    /// cluster-wide readings rather than present per-shard approximations
    /// as global. Post-run totals from [`metrics`](ExecBackend::metrics)
    /// are exact either way.
    fn has_global_metrics_view(&self) -> bool {
        true
    }

    /// Mutable metrics access, valid before and after `run`.
    fn metrics_mut(&mut self) -> &mut Metrics;

    /// Execute to quiescence (or until a task stops the run) and return
    /// the end time: virtual for simulators, wall-clock microseconds
    /// since start for threaded backends.
    fn run(&mut self) -> SimTime;

    /// The task registered under `id`, as `Any` (for downcasting after
    /// the run).
    fn task_any(&self, id: TaskId) -> &dyn Any;

    /// Typed access to a task's final state. Panics on a wrong id or
    /// type — programming errors in the driver, not runtime conditions.
    fn task_ref<T: Any>(&self, id: TaskId) -> &T
    where
        Self: Sized,
    {
        self.task_any(id)
            .downcast_ref::<T>()
            .expect("task type mismatch")
    }
}

/// Boxed backends are backends too, so drivers written against
/// `impl ExecBackend<M>` also accept a `Box<dyn ExecBackend<M>>` (or a
/// boxed sub-trait object) chosen at runtime — the session layer uses
/// this to plug in backends registered from other crates.
impl<M: SimMessage + 'static, T: ExecBackend<M> + ?Sized> ExecBackend<M> for Box<T> {
    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }

    fn add_machine(&mut self) -> MachineId {
        (**self).add_machine()
    }

    fn add_machine_with_network(&mut self, network: NetworkConfig) -> MachineId {
        (**self).add_machine_with_network(network)
    }

    fn add_deferred_machine(&mut self) -> MachineId {
        (**self).add_deferred_machine()
    }

    fn provisioned_machines(&self) -> usize {
        (**self).provisioned_machines()
    }

    fn peak_provisioned_machines(&self) -> usize {
        (**self).peak_provisioned_machines()
    }

    fn add_task(&mut self, machine: MachineId, task: Box<dyn Process<M> + Send>) -> TaskId {
        (**self).add_task(machine, task)
    }

    fn start_timer_at(&mut self, at: SimTime, task: TaskId, key: u64) {
        (**self).start_timer_at(at, task, key)
    }

    fn metrics(&self) -> &Metrics {
        (**self).metrics()
    }

    fn has_global_metrics_view(&self) -> bool {
        (**self).has_global_metrics_view()
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        (**self).metrics_mut()
    }

    fn run(&mut self) -> SimTime {
        (**self).run()
    }

    fn task_any(&self, id: TaskId) -> &dyn Any {
        (**self).task_any(id)
    }
}
