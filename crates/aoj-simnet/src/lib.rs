//! # aoj-simnet — deterministic shared-nothing cluster simulator
//!
//! The evaluation in *Scalable and Adaptive Online Joins* (VLDB 2014) ran on
//! 220 Solaris zones connected by 1 Gbit Ethernet. This crate substitutes
//! that testbed with a **deterministic discrete-event simulation** exposing
//! exactly the quantities the paper measures: virtual execution time,
//! per-machine busy time, message and byte counts, and storage footprints.
//!
//! The model, bottom-up:
//!
//! * [`SimTime`]/[`SimDuration`] — virtual time in microseconds.
//! * A **machine** ([`machine`]) owns a CPU that processes one message at a
//!   time. Messages wait in per-class queues (control / data / migration)
//!   served by a weighted policy, which is how the paper's "migrated tuples
//!   are processed at twice the rate of new tuples" rule is realised.
//! * A **NIC** per machine serialises outgoing bytes at a configurable
//!   bandwidth, and every message pays a propagation latency
//!   ([`network`]). Because sends are serialised at the sender and latency
//!   is constant, every (sender, receiver) channel is FIFO — a property the
//!   paper's epoch protocol relies on.
//! * A **task** ([`Process`]) is a state machine hosted on a machine. Tasks
//!   receive messages and timers, perform work priced by the
//!   [`CostModel`], and send messages through their [`Ctx`].
//! * The [`Sim`] driver pops events in `(time, sequence)` order, so runs
//!   are bit-for-bit reproducible for a given configuration and seed.
//!
//! Nothing in this crate knows about joins; the operator crates layer the
//! paper's reshuffler/joiner/controller topology on top.
//!
//! ```
//! use aoj_simnet::{Sim, SimConfig, Process, Ctx, SimMessage, MsgClass, SimDuration, TaskId};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl SimMessage for Ping {
//!     fn bytes(&self) -> u64 { 16 }
//!     fn class(&self) -> MsgClass { MsgClass::Data }
//! }
//!
//! struct Echo { peer: Option<TaskId>, got: u32 }
//! impl Process<Ping> for Echo {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, _from: TaskId, msg: Ping) -> SimDuration {
//!         self.got = msg.0;
//!         if let Some(peer) = self.peer {
//!             if msg.0 < 3 { ctx.send(peer, Ping(msg.0 + 1)); }
//!         }
//!         SimDuration::from_micros(5)
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let m0 = sim.add_machine();
//! let m1 = sim.add_machine();
//! let a = sim.add_task(m0, Box::new(Echo { peer: None, got: 0 }));
//! let b = sim.add_task(m1, Box::new(Echo { peer: Some(a), got: 0 }));
//! sim.task_mut::<Echo>(a).peer = Some(b);
//! sim.inject(a, b, Ping(0));
//! sim.run();
//! // b saw 0 and 2; a saw 1 and the final 3.
//! assert_eq!(sim.task_mut::<Echo>(b).got, 2);
//! assert_eq!(sim.task_mut::<Echo>(a).got, 3);
//! ```

pub mod config;
pub mod event;
pub mod exec;
pub mod machine;
pub mod metrics;
pub mod network;
pub mod sim;
pub mod task;
pub mod time;

pub use config::{CostModel, SimConfig};
pub use exec::ExecBackend;
pub use machine::{MachineConfig, MachineId};
pub use metrics::{MachineMetrics, Metrics, SharedGauges};
pub use network::NetworkConfig;
pub use sim::Sim;
pub use task::{Ctx, Effect, MsgClass, Process, SimMessage, TaskId};
pub use time::{SimDuration, SimTime};
