//! Behavioural tests of the simulator: FIFO channels, CPU serialisation,
//! weighted migration scheduling, timers, determinism.

use aoj_simnet::{
    Ctx, MsgClass, Process, Sim, SimConfig, SimDuration, SimMessage, SimTime, TaskId,
};

#[derive(Clone, Debug)]
enum Msg {
    Data(u64),
    Migration(u64),
    Burst { n: u64, to: TaskId },
}

impl SimMessage for Msg {
    fn bytes(&self) -> u64 {
        match self {
            Msg::Data(_) | Msg::Migration(_) => 64,
            Msg::Burst { .. } => 16,
        }
    }
    fn class(&self) -> MsgClass {
        match self {
            Msg::Migration(_) => MsgClass::Migration,
            _ => MsgClass::Data,
        }
    }
}

/// Records arrival order and processing times.
#[derive(Default)]
struct Recorder {
    seen: Vec<(u64, u64)>, // (payload, time_us)
    cost_us: u64,
}

impl Process<Msg> for Recorder {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: TaskId, msg: Msg) -> SimDuration {
        match msg {
            Msg::Data(x) | Msg::Migration(x) => {
                self.seen.push((x, ctx.now().as_micros()));
                SimDuration::from_micros(self.cost_us)
            }
            Msg::Burst { n, to } => {
                for i in 0..n {
                    ctx.send(to, Msg::Data(i));
                }
                SimDuration::from_micros(1)
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, key: u64) -> SimDuration {
        self.seen.push((1_000_000 + key, ctx.now().as_micros()));
        SimDuration::from_micros(1)
    }
}

fn two_node_sim() -> (Sim<Msg>, TaskId, TaskId) {
    let mut sim = Sim::new(SimConfig::default());
    let m0 = sim.add_machine();
    let m1 = sim.add_machine();
    let sender = sim.add_task(m0, Box::new(Recorder::default()));
    let receiver = sim.add_task(m1, Box::new(Recorder::default()));
    (sim, sender, receiver)
}

#[test]
fn channel_is_fifo_under_bursts() {
    let (mut sim, sender, receiver) = two_node_sim();
    sim.inject(
        receiver,
        sender,
        Msg::Burst {
            n: 100,
            to: receiver,
        },
    );
    sim.run();
    let seen = &sim.task_ref::<Recorder>(receiver).seen;
    assert_eq!(seen.len(), 100);
    let payloads: Vec<u64> = seen.iter().map(|(p, _)| *p).collect();
    assert_eq!(payloads, (0..100).collect::<Vec<_>>());
    // Arrival times strictly non-decreasing.
    assert!(seen.windows(2).all(|w| w[0].1 <= w[1].1));
}

#[test]
fn cpu_serialises_processing() {
    let (mut sim, sender, receiver) = two_node_sim();
    sim.task_mut::<Recorder>(receiver).cost_us = 50;
    sim.inject(
        receiver,
        sender,
        Msg::Burst {
            n: 10,
            to: receiver,
        },
    );
    sim.run();
    let seen = sim.task_ref::<Recorder>(receiver).seen.clone();
    // Each message processed >= 50us after the previous started.
    for w in seen.windows(2) {
        assert!(w[1].1 >= w[0].1 + 50, "processing overlapped: {w:?}");
    }
    let busy = sim
        .metrics()
        .machine(sim.machine_of(receiver))
        .busy
        .as_micros();
    assert_eq!(busy, 10 * 50);
}

#[test]
fn migration_is_served_two_to_one() {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.add_machine();
    let t = sim.add_task(
        m,
        Box::new(Recorder {
            cost_us: 10,
            ..Default::default()
        }),
    );
    // Arrange for both queues to be backlogged at t=0.
    for i in 0..4 {
        sim.inject(t, t, Msg::Data(i));
    }
    for i in 0..8 {
        sim.inject(t, t, Msg::Migration(100 + i));
    }
    sim.run();
    let order: Vec<u64> = sim
        .task_ref::<Recorder>(t)
        .seen
        .iter()
        .map(|s| s.0)
        .collect();
    assert_eq!(
        order,
        vec![100, 101, 0, 102, 103, 1, 104, 105, 2, 106, 107, 3]
    );
}

#[test]
fn timers_fire_at_requested_time() {
    let mut sim = Sim::new(SimConfig::default());
    let m = sim.add_machine();
    let t = sim.add_task(m, Box::new(Recorder::default()));
    sim.start_timer_at(SimTime(500), t, 7);
    sim.start_timer_at(SimTime(100), t, 3);
    sim.run();
    let seen = sim.task_ref::<Recorder>(t).seen.clone();
    assert_eq!(seen, vec![(1_000_003, 100), (1_000_007, 500)]);
}

#[test]
fn network_metrics_count_remote_but_not_loopback() {
    let mut sim = Sim::new(SimConfig::default());
    let m0 = sim.add_machine();
    let a = sim.add_task(m0, Box::new(Recorder::default()));
    let b = sim.add_task(m0, Box::new(Recorder::default())); // same machine
    let m1 = sim.add_machine();
    let c = sim.add_task(m1, Box::new(Recorder::default()));

    // a -> b is loopback; a -> c is remote.
    struct Fanout {
        b: TaskId,
        c: TaskId,
    }
    impl Process<Msg> for Fanout {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _f: TaskId, _m: Msg) -> SimDuration {
            ctx.send(self.b, Msg::Data(1));
            ctx.send(self.c, Msg::Data(2));
            SimDuration::from_micros(1)
        }
    }
    let m2 = sim.add_machine();
    let f = sim.add_task(m2, Box::new(Fanout { b, c }));
    sim.inject(a, f, Msg::Data(0));
    sim.run();

    assert_eq!(sim.task_ref::<Recorder>(b).seen.len(), 1);
    assert_eq!(sim.task_ref::<Recorder>(c).seen.len(), 1);
    // Fanout machine sent exactly one remote message (to c). The loopback
    // to b is invisible to network metrics... but b is on machine m0 and f
    // on m2, so both are remote here. Re-check with explicit placement:
    let sent = sim.metrics().machine(sim.machine_of(f)).messages_out;
    assert_eq!(sent, 2); // both sends remote: f is alone on m2
}

#[test]
fn loopback_send_is_free_of_network_cost() {
    let mut sim = Sim::new(SimConfig::default());
    let m0 = sim.add_machine();
    let a = sim.add_task(m0, Box::new(Recorder::default()));

    struct SelfSender {
        target: TaskId,
        sent: bool,
    }
    impl Process<Msg> for SelfSender {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _f: TaskId, _m: Msg) -> SimDuration {
            if !self.sent {
                self.sent = true;
                ctx.send(self.target, Msg::Data(9));
            }
            SimDuration::from_micros(1)
        }
    }
    let s = sim.add_task(
        m0,
        Box::new(SelfSender {
            target: a,
            sent: false,
        }),
    );
    sim.inject(a, s, Msg::Data(0));
    sim.run();
    assert_eq!(sim.metrics().machine(m0).messages_out, 0);
    assert_eq!(sim.task_ref::<Recorder>(a).seen.len(), 1);
    // Loopback delivery happened at handler completion (t=1), processed
    // immediately after.
    assert_eq!(sim.task_ref::<Recorder>(a).seen[0].1, 1);
}

#[test]
fn deterministic_replay() {
    let run = || {
        let (mut sim, sender, receiver) = two_node_sim();
        sim.task_mut::<Recorder>(receiver).cost_us = 3;
        sim.inject(
            receiver,
            sender,
            Msg::Burst {
                n: 50,
                to: receiver,
            },
        );
        let end = sim.run();
        (end, sim.task_ref::<Recorder>(receiver).seen.clone())
    };
    let (end1, seen1) = run();
    let (end2, seen2) = run();
    assert_eq!(end1, end2);
    assert_eq!(seen1, seen2);
}

#[test]
fn scheduled_kill_silences_a_machine_deterministically() {
    let run = || {
        let (mut sim, sender, receiver) = two_node_sim();
        sim.task_mut::<Recorder>(receiver).cost_us = 10;
        sim.inject(
            receiver,
            sender,
            Msg::Burst {
                n: 50,
                to: receiver,
            },
        );
        // The victim dies mid-burst: everything it already processed
        // stays recorded, everything after the kill evaporates.
        let victim = sim.machine_of(receiver);
        sim.schedule_kill(victim, SimTime(200));
        sim.run();
        assert_eq!(sim.deaths(), &[(victim, SimTime(200))]);
        sim.task_ref::<Recorder>(receiver).seen.clone()
    };
    let seen1 = run();
    let seen2 = run();
    assert_eq!(seen1, seen2, "kills must not break deterministic replay");
    assert!(!seen1.is_empty(), "victim processed nothing before death");
    assert!(seen1.len() < 50, "kill arrived too late to matter");
    assert!(seen1.iter().all(|&(_, at)| at <= 200));
}

#[test]
fn dead_machine_drops_later_deliveries_and_timers() {
    let (mut sim, sender, receiver) = two_node_sim();
    let victim = sim.machine_of(receiver);
    sim.kill_now(victim);
    // Provisioned count reflects the death; the survivor is untouched.
    assert_eq!(sim.provisioned_machines(), 1);
    sim.inject(sender, receiver, Msg::Data(1));
    sim.start_timer_at(SimTime(10), receiver, 7);
    sim.inject(receiver, sender, Msg::Data(2));
    sim.run();
    assert_eq!(sim.task_ref::<Recorder>(receiver).seen.len(), 0);
    assert_eq!(sim.task_ref::<Recorder>(sender).seen.len(), 1);
    // Killing twice is idempotent.
    sim.kill_now(victim);
    assert_eq!(sim.deaths().len(), 1);
}

#[test]
fn deadline_stops_the_run() {
    let cfg = SimConfig {
        deadline: Some(SimTime(150)),
        ..SimConfig::default()
    };
    let mut sim = Sim::new(cfg);
    let m = sim.add_machine();
    let t = sim.add_task(m, Box::new(Recorder::default()));
    sim.start_timer_at(SimTime(100), t, 1);
    sim.start_timer_at(SimTime(200), t, 2);
    sim.run();
    let seen = sim.task_ref::<Recorder>(t).seen.clone();
    assert_eq!(seen.len(), 1);
    assert_eq!(seen[0].0, 1_000_001);
}
