//! Property test of the delivery guarantee the epoch protocol builds on:
//! within one message class, any (sender, receiver) channel is FIFO, for
//! arbitrary topologies, message sizes, and handler costs.

use aoj_simnet::{Ctx, MsgClass, Process, Sim, SimConfig, SimDuration, SimMessage, TaskId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Payload {
    from_idx: usize,
    seq: u64,
    bytes: u64,
    class_migration: bool,
}

impl SimMessage for Payload {
    fn bytes(&self) -> u64 {
        self.bytes
    }
    fn class(&self) -> MsgClass {
        if self.class_migration {
            MsgClass::Migration
        } else {
            MsgClass::Data
        }
    }
}

/// A sender that emits a scripted sequence of messages to one receiver.
struct Sender {
    script: Vec<Payload>,
    cursor: usize,
    to: TaskId,
}

impl Process<Payload> for Sender {
    fn on_message(&mut self, _c: &mut Ctx<'_, Payload>, _f: TaskId, _m: Payload) -> SimDuration {
        SimDuration::ZERO
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Payload>, _key: u64) -> SimDuration {
        // Emit a burst of up to 3 messages per tick.
        for _ in 0..3 {
            if self.cursor >= self.script.len() {
                return SimDuration::from_micros(1);
            }
            ctx.send(self.to, self.script[self.cursor].clone());
            self.cursor += 1;
        }
        ctx.schedule(SimDuration::from_micros(2), 0);
        SimDuration::from_micros(1)
    }
}

/// A receiver recording the arrival order per (sender, class).
#[derive(Default)]
struct Receiver {
    seen: Vec<(usize, bool, u64)>, // (sender, is_migration, seq)
    cost_us: u64,
}

impl Process<Payload> for Receiver {
    fn on_message(&mut self, _c: &mut Ctx<'_, Payload>, _f: TaskId, m: Payload) -> SimDuration {
        self.seen.push((m.from_idx, m.class_migration, m.seq));
        SimDuration::from_micros(self.cost_us)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn per_channel_fifo_within_class(
        n_senders in 1usize..6,
        msgs_per_sender in 1usize..40,
        sizes in prop::collection::vec(1u64..5_000, 1..40),
        recv_cost in 0u64..20,
        migration_mask in any::<u64>(),
    ) {
        let mut sim: Sim<Payload> = Sim::new(SimConfig::default());
        let mut machines = Vec::new();
        for _ in 0..n_senders + 1 {
            machines.push(sim.add_machine());
        }
        let recv_id = TaskId(0);
        let recv = Receiver { seen: Vec::new(), cost_us: recv_cost };
        let id = sim.add_task(machines[0], Box::new(recv));
        prop_assert_eq!(id, recv_id);
        for s in 0..n_senders {
            let script: Vec<Payload> = (0..msgs_per_sender)
                .map(|i| Payload {
                    from_idx: s,
                    seq: i as u64,
                    bytes: sizes[i % sizes.len()],
                    class_migration: (migration_mask >> (i % 64)) & 1 == 1,
                })
                .collect();
            let t = sim.add_task(
                machines[s + 1],
                Box::new(Sender { script, cursor: 0, to: recv_id }),
            );
            sim.start_timer_at(aoj_simnet::SimTime(s as u64), t, 0);
        }
        sim.run();
        let seen = &sim.task_ref::<Receiver>(recv_id).seen;
        prop_assert_eq!(seen.len(), n_senders * msgs_per_sender);
        // Within each (sender, class) channel, seq must be increasing.
        for sender in 0..n_senders {
            for class in [false, true] {
                let seqs: Vec<u64> = seen
                    .iter()
                    .filter(|(s, c, _)| *s == sender && *c == class)
                    .map(|(_, _, q)| *q)
                    .collect();
                prop_assert!(
                    seqs.windows(2).all(|w| w[0] < w[1]),
                    "channel (sender {}, migration {}) reordered: {:?}",
                    sender,
                    class,
                    seqs
                );
            }
        }
    }
}
