//! End-to-end correctness of the non-blocking migration protocol
//! (Theorem 4.5): a synchronous mini-cluster drives reshufflers and
//! joiners through adversarially interleaved deliveries and checks that
//! the union of all joiner outputs equals the reference join — no
//! duplicates, no misses — and that post-migration state matches the grid.
//!
//! The harness honours exactly the ordering the real transport
//! (`aoj-simnet`) provides: per-channel FIFO, with a reshuffler's epoch
//! signal travelling behind its earlier data, and the partner's end marker
//! behind its migration state. Everything else — the interleaving across
//! channels, how late each reshuffler adopts a mapping change — is driven
//! by a seeded RNG and deliberately hostile.

use std::collections::VecDeque;

use aoj_core::epoch::EpochJoiner;
use aoj_core::index::VecIndex;
use aoj_core::mapping::{GridAssignment, Mapping, Step};
use aoj_core::migration::{plan_step, MigrationPlan};
use aoj_core::predicate::Predicate;
use aoj_core::ticket::{partition, TicketGen};
use aoj_core::tuple::{Rel, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Messages on a reshuffler→joiner or joiner→joiner channel.
#[derive(Clone, Debug)]
enum Msg {
    Data {
        tag: u32,
        t: Tuple,
    },
    Signal {
        from_reshuffler: usize,
        new_epoch: u32,
    },
    MigTuple(Tuple),
    MigDone,
}

struct Cluster {
    assign: GridAssignment,      // canonical (controller's) view
    plan: Option<MigrationPlan>, // in-flight migration plan
    joiners: Vec<EpochJoiner>,
    n_reshufflers: usize,
    /// Reshuffler views: (epoch, assignment).
    resh: Vec<(u32, GridAssignment)>,
    ticket_gen: TicketGen,
    /// channels[src][dst]: src 0..R are reshufflers, R.. are joiners.
    channels: Vec<Vec<VecDeque<Msg>>>,
    emitted: Vec<(u64, u64)>,
    rng: StdRng,
}

impl Cluster {
    fn new(mapping: Mapping, n_reshufflers: usize, predicate: Predicate, seed: u64) -> Cluster {
        let j = mapping.j() as usize;
        let assign = GridAssignment::initial(mapping);
        let joiners = (0..j)
            .map(|_| {
                let p = predicate.clone();
                EpochJoiner::new(&move || Box::new(VecIndex::new(p.clone())), n_reshufflers)
            })
            .collect();
        Cluster {
            assign: assign.clone(),
            plan: None,
            joiners,
            n_reshufflers,
            resh: vec![(0, assign); n_reshufflers],
            ticket_gen: TicketGen::new(seed ^ 0xABCD),
            channels: vec![vec![VecDeque::new(); j]; n_reshufflers + j],
            emitted: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn route(&mut self, reshuffler: usize, rel: Rel, key: i64, seq: u64) {
        let ticket = self.ticket_gen.next();
        let t = Tuple::new(rel, seq, key, ticket);
        let (epoch, assign) = self.resh[reshuffler].clone();
        let mp = assign.mapping();
        match rel {
            Rel::R => {
                let row = partition(ticket, mp.n);
                for mach in assign.machines_for_row(row).collect::<Vec<_>>() {
                    self.channels[reshuffler][mach].push_back(Msg::Data { tag: epoch, t });
                }
            }
            Rel::S => {
                let col = partition(ticket, mp.m);
                for mach in assign.machines_for_col(col).collect::<Vec<_>>() {
                    self.channels[reshuffler][mach].push_back(Msg::Data { tag: epoch, t });
                }
            }
        }
    }

    /// Reshuffler `r` adopts the in-flight mapping change: queues the epoch
    /// signal on every joiner channel (FIFO: behind its old-epoch data),
    /// then routes under the new mapping.
    fn adopt(&mut self, r: usize) {
        let plan = self.plan.as_ref().expect("no migration in flight");
        let (epoch, assign) = &mut self.resh[r];
        *epoch += 1;
        let new_epoch = *epoch;
        assign.apply_step(plan.step);
        for dst in 0..self.joiners.len() {
            self.channels[r][dst].push_back(Msg::Signal {
                from_reshuffler: r,
                new_epoch,
            });
        }
    }

    /// Deliver one message from a random non-empty channel. Returns false
    /// if all channels are empty.
    fn deliver_one(&mut self) -> bool {
        let nonempty: Vec<(usize, usize)> = self
            .channels
            .iter()
            .enumerate()
            .flat_map(|(s, row)| {
                row.iter()
                    .enumerate()
                    .filter(|(_, q)| !q.is_empty())
                    .map(move |(d, _)| (s, d))
            })
            .collect();
        if nonempty.is_empty() {
            return false;
        }
        let (src, dst) = nonempty[self.rng.gen_range(0..nonempty.len())];
        let msg = self.channels[src][dst].pop_front().unwrap();
        self.handle(src, dst, msg);
        true
    }

    fn handle(&mut self, _src: usize, dst: usize, msg: Msg) {
        let r_joiner_base = self.n_reshufflers;
        let mut out_pairs: Vec<(u64, u64)> = Vec::new();
        let mut out = |r: &Tuple, s: &Tuple| out_pairs.push((r.seq, s.seq));
        match msg {
            Msg::Data { tag, t } => {
                let outcome = self.joiners[dst].on_data(tag, t, &mut out);
                if outcome.forward_to_partner {
                    let spec = self.plan.as_ref().unwrap().specs[dst];
                    self.channels[r_joiner_base + dst][spec.partner].push_back(Msg::MigTuple(t));
                }
            }
            Msg::Signal {
                from_reshuffler,
                new_epoch,
            } => {
                let spec = self.plan.as_ref().expect("signal without plan").specs[dst];
                let so = self.joiners[dst].on_signal(
                    from_reshuffler,
                    new_epoch,
                    spec,
                    self.n_reshufflers,
                );
                if so.start_migration {
                    for t in self.joiners[dst].migration_snapshot() {
                        self.channels[r_joiner_base + dst][spec.partner]
                            .push_back(Msg::MigTuple(t));
                    }
                }
                if so.all_signals {
                    self.channels[r_joiner_base + dst][spec.partner].push_back(Msg::MigDone);
                }
            }
            Msg::MigTuple(t) => {
                self.joiners[dst].on_migration_tuple(t, &mut out);
            }
            Msg::MigDone => {
                self.joiners[dst].on_partner_done();
            }
        }
        self.emitted.extend(out_pairs);
        if self.joiners[dst].ready_to_finalize() {
            self.joiners[dst].finalize();
        }
    }

    fn flush(&mut self) {
        while self.deliver_one() {}
        // A completed migration leaves every joiner stable.
        if self.plan.is_some() {
            assert!(
                self.joiners.iter().all(|j| !j.is_migrating()),
                "flush must complete the in-flight migration"
            );
            self.plan = None;
        }
    }

    /// Begin a migration step: compute the plan against the canonical
    /// assignment, advance it, and return. Reshufflers adopt it later (via
    /// [`Cluster::adopt`]) at staggered points chosen by the caller.
    fn start_migration(&mut self, step: Step) {
        assert!(self.plan.is_none(), "controller gating violated");
        let plan = plan_step(&self.assign, step);
        self.assign.apply_step(step);
        self.plan = Some(plan);
    }

    /// Verify every joiner's state matches the grid for the final mapping.
    fn assert_grid_invariant(&self, universe: &[Tuple]) {
        let mp = self.assign.mapping();
        for k in 0..self.joiners.len() {
            let pos = self.assign.pos_of(k);
            let mut expected: Vec<u64> = universe
                .iter()
                .filter(|t| match t.rel {
                    Rel::R => partition(t.ticket, mp.n) == pos.row,
                    Rel::S => partition(t.ticket, mp.m) == pos.col,
                })
                .map(|t| t.seq)
                .collect();
            expected.sort_unstable();
            // Joiner state is all in τ after stabilisation.
            assert!(!self.joiners[k].is_migrating());
            let sizes = self.joiners[k].set_sizes();
            assert_eq!(sizes[1] + sizes[2] + sizes[3], 0, "non-τ state after flush");
            // VecIndex snapshots are not exposed through EpochJoiner, so
            // counts are checked here; exact membership is covered by the
            // migration-plan unit tests.
            assert_eq!(
                self.joiners[k].stored_tuples(),
                expected.len(),
                "joiner {k} at {pos:?} stores wrong tuple count"
            );
        }
    }
}

/// Reference join: all (r.seq, s.seq) pairs satisfying the predicate.
fn reference_join(universe: &[Tuple], predicate: &Predicate) -> Vec<(u64, u64)> {
    let rs: Vec<&Tuple> = universe.iter().filter(|t| t.rel == Rel::R).collect();
    let ss: Vec<&Tuple> = universe.iter().filter(|t| t.rel == Rel::S).collect();
    let mut out = Vec::new();
    for r in &rs {
        for s in &ss {
            if predicate.matches(r, s) {
                out.push((r.seq, s.seq));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Drive a full scenario: stream `n_tuples` tuples with keys in
/// `0..key_space`, performing the given migration steps at the given
/// stream positions, with adversarial interleaving from `seed`.
fn run_scenario(
    mapping: Mapping,
    n_reshufflers: usize,
    predicate: Predicate,
    n_tuples: u64,
    key_space: i64,
    migrations: &[(u64, Step)],
    seed: u64,
) {
    let mut cluster = Cluster::new(mapping, n_reshufflers, predicate.clone(), seed);
    let mut key_rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut universe: Vec<Tuple> = Vec::new();
    // Track tickets: the cluster's generator is deterministic, so we mirror
    // it to know each tuple's ticket for the reference grid check.
    let mut mirror_gen = TicketGen::new(seed ^ 0xABCD);

    let mut mig_iter = migrations.iter().peekable();
    // Staggered adoption bookkeeping: reshuffler r adopts after routing
    // `lag[r]` more tuples past the decision point.
    let mut pending_adopt: Vec<Option<u64>> = vec![None; n_reshufflers];

    for seq in 0..n_tuples {
        if let Some(&&(at, step)) = mig_iter.peek() {
            if seq == at {
                mig_iter.next();
                // Complete any previous migration first (controller gating).
                cluster.flush();
                cluster.start_migration(step);
                for slot in pending_adopt.iter_mut() {
                    let lag = key_rng.gen_range(0..20u64);
                    *slot = Some(seq + lag);
                }
            }
        }
        let reshuffler = (seq % n_reshufflers as u64) as usize;
        // Adopt the mapping change if this reshuffler's lag expired.
        for (r, slot) in pending_adopt.iter_mut().enumerate() {
            if slot.is_some_and(|at| seq >= at) {
                cluster.adopt(r);
                *slot = None;
            }
        }
        let rel = if key_rng.gen_bool(0.5) {
            Rel::R
        } else {
            Rel::S
        };
        let key = key_rng.gen_range(0..key_space);
        let ticket = mirror_gen.next();
        universe.push(Tuple::new(rel, seq, key, ticket));
        cluster.route(reshuffler, rel, key, seq);
        // Deliver a random burst to interleave processing with routing.
        for _ in 0..key_rng.gen_range(0..6) {
            if !cluster.deliver_one() {
                break;
            }
        }
    }
    // Late adopters that never hit their lag point adopt now.
    for (r, slot) in pending_adopt.iter_mut().enumerate() {
        if slot.take().is_some() {
            cluster.adopt(r);
        }
    }
    cluster.flush();

    let mut got = cluster.emitted.clone();
    got.sort_unstable();
    let want = reference_join(&universe, &predicate);
    assert_eq!(
        got.len(),
        want.len(),
        "output cardinality mismatch (dups or misses) seed {seed}"
    );
    assert_eq!(got, want, "output mismatch for seed {seed}");
    cluster.assert_grid_invariant(&universe);
}

#[test]
fn single_migration_equi_join_is_exact() {
    for seed in 0..8 {
        run_scenario(
            Mapping::new(4, 2),
            3,
            Predicate::Equi,
            600,
            40,
            &[(200, Step::HalveRows)],
            seed,
        );
    }
}

#[test]
fn single_migration_other_direction_is_exact() {
    for seed in 0..8 {
        run_scenario(
            Mapping::new(2, 4),
            3,
            Predicate::Equi,
            600,
            40,
            &[(250, Step::HalveCols)],
            seed,
        );
    }
}

#[test]
fn chained_migrations_are_exact() {
    for seed in 0..6 {
        run_scenario(
            Mapping::new(4, 4),
            4,
            Predicate::Equi,
            1_200,
            60,
            &[
                (200, Step::HalveRows),
                (500, Step::HalveRows),
                (800, Step::HalveCols),
                (1_000, Step::HalveCols),
            ],
            seed,
        );
    }
}

#[test]
fn band_join_under_migration_is_exact() {
    for seed in 0..6 {
        run_scenario(
            Mapping::new(2, 2),
            2,
            Predicate::Band { width: 2 },
            500,
            80,
            &[(150, Step::HalveRows), (350, Step::HalveCols)],
            seed,
        );
    }
}

#[test]
fn inequality_join_under_migration_is_exact() {
    // r.key != s.key: high selectivity, exercises heavy output paths.
    for seed in 0..4 {
        run_scenario(
            Mapping::new(2, 4),
            3,
            Predicate::NotEqual,
            300,
            10,
            &[(120, Step::HalveCols)],
            seed,
        );
    }
}

#[test]
fn cross_product_under_migration_is_exact() {
    for seed in 0..3 {
        run_scenario(
            Mapping::new(2, 2),
            2,
            Predicate::CrossProduct,
            240,
            5,
            &[(100, Step::HalveRows)],
            seed,
        );
    }
}

#[test]
fn no_migration_baseline_is_exact() {
    for seed in 0..4 {
        run_scenario(Mapping::new(4, 4), 4, Predicate::Equi, 800, 50, &[], seed);
    }
}

#[test]
fn migration_to_edge_mapping_is_exact() {
    // Walk all the way to (1, 16): three successive halvings.
    for seed in 0..4 {
        run_scenario(
            Mapping::new(8, 2),
            3,
            Predicate::Equi,
            1_000,
            64,
            &[
                (200, Step::HalveRows),
                (450, Step::HalveRows),
                (700, Step::HalveRows),
            ],
            seed,
        );
    }
}

#[test]
fn two_joiner_minimum_cluster_is_exact() {
    for seed in 0..4 {
        run_scenario(
            Mapping::new(2, 1),
            2,
            Predicate::Equi,
            300,
            20,
            &[(100, Step::HalveRows), (220, Step::HalveCols)],
            seed,
        );
    }
}
