//! Property-based tests (proptest) over the core data structures: the
//! invariants the paper's proofs rest on must hold for *arbitrary* inputs,
//! not just the hand-picked cases of the unit tests.

use aoj_core::elastic::plan_expansion;
use aoj_core::ilf::{
    continuous_lower_bound, effective_cardinalities, ilf, optimal_ilf, optimal_mapping,
};
use aoj_core::mapping::{GridAssignment, Mapping, Step};
use aoj_core::migration::{plan_step, StateClass};
use aoj_core::ticket::{partition, refine_bit};
use aoj_core::tuple::{Rel, Tuple};
use proptest::prelude::*;

/// Strategy: a power-of-two J between 2 and 256 split into (n, m).
fn mapping_strategy() -> impl Strategy<Value = Mapping> {
    (1u32..=8, 0u32..=8).prop_filter_map("n*m must be 2..=256", |(e, k)| {
        if k <= e && (1..=8).contains(&e) {
            Some(Mapping::new(1 << k, 1 << (e - k)))
        } else {
            None
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Ticket partitions nest: partition at 2p refines partition at p.
    #[test]
    fn ticket_partitions_nest(ticket in any::<u64>(), bits in 0u32..8) {
        let p = 1u32 << bits;
        prop_assert_eq!(
            partition(ticket, 2 * p),
            partition(ticket, p) * 2 + refine_bit(ticket, p)
        );
    }

    /// The optimal mapping really is optimal: no other factorisation has
    /// a smaller ILF.
    #[test]
    fn optimal_mapping_minimises_ilf(
        j_exp in 1u32..=8,
        r in 1u64..1_000_000,
        s in 1u64..1_000_000,
    ) {
        let j = 1u32 << j_exp;
        let best = optimal_mapping(j, r, s);
        for k in 0..=j_exp {
            let other = Mapping::new(1 << k, 1 << (j_exp - k));
            prop_assert!(ilf(r, s, best) <= ilf(r, s, other) + 1e-9);
        }
    }

    /// Theorem 3.2: within the ratio assumption, the grid optimum is
    /// within 1.07x of the continuous lower bound.
    #[test]
    fn grid_semi_perimeter_bound(
        j_exp in 1u32..=8,
        r in 1u64..1_000_000,
        s in 1u64..1_000_000,
    ) {
        let j = 1u32 << j_exp;
        let ratio = r.max(s) as f64 / r.min(s) as f64;
        prop_assume!(ratio < j as f64);
        let opt = optimal_ilf(j, r, s);
        let bound = continuous_lower_bound(j, r, s);
        prop_assert!(opt <= 1.07 * bound + 1e-6, "opt {} vs 1.07x bound {}", opt, bound);
    }

    /// Lemma 4.1 at the optimum: the two per-joiner shares are within 2x
    /// of each other (ratio assumption permitting).
    #[test]
    fn optimal_mapping_is_balanced(
        j_exp in 1u32..=8,
        r in 1u64..1_000_000,
        s in 1u64..1_000_000,
    ) {
        let j = 1u32 << j_exp;
        prop_assume!(r.max(s) <= r.min(s) * j as u64);
        let mp = optimal_mapping(j, r, s);
        let rn = r as f64 / mp.n as f64;
        let sm = s as f64 / mp.m as f64;
        prop_assert!(rn <= 2.0 * sm + 1e-9);
        prop_assert!(sm <= 2.0 * rn + 1e-9);
    }

    /// Padding keeps the effective ratio within J and inflates the volume
    /// by at most (1 + 1/J).
    #[test]
    fn padding_invariants(j_exp in 1u32..=8, r in 0u64..1_000_000, s in 0u64..1_000_000) {
        let j = 1u32 << j_exp;
        let (re, se) = effective_cardinalities(j, r, s);
        prop_assert!(re >= 1 && se >= 1);
        prop_assert!(re.max(se) <= re.min(se) * j as u64 + j as u64);
        let total = (r + s) as f64;
        prop_assert!((re + se) as f64 <= total * (1.0 + 1.0 / j as f64) + 2.0);
    }

    /// Grid relabelling is a bijection after any step, and partners merge
    /// into sibling cells.
    #[test]
    fn relabelling_is_bijective(mapping in mapping_strategy(), halve_rows in any::<bool>()) {
        let step = if halve_rows { Step::HalveRows } else { Step::HalveCols };
        prop_assume!(step.apply(mapping).is_some());
        let mut assign = GridAssignment::initial(mapping);
        assign.apply_step(step);
        let mp = assign.mapping();
        let mut seen = vec![false; mp.j() as usize];
        for row in 0..mp.n {
            for col in 0..mp.m {
                let k = assign.machine_at(row, col);
                prop_assert!(!seen[k]);
                seen[k] = true;
            }
        }
    }

    /// Migration classification is a partition: every tuple is exactly one
    /// of Keep / KeepAndMigrate / Discard, coarsening tuples always
    /// migrate, and partner keep-bits complement.
    #[test]
    fn migration_classification_partitions_state(
        mapping in mapping_strategy(),
        halve_rows in any::<bool>(),
        ticket in any::<u64>(),
        is_r in any::<bool>(),
    ) {
        let step = if halve_rows { Step::HalveRows } else { Step::HalveCols };
        prop_assume!(step.apply(mapping).is_some());
        let assign = GridAssignment::initial(mapping);
        let plan = plan_step(&assign, step);
        let rel = if is_r { Rel::R } else { Rel::S };
        let t = Tuple::new(rel, 0, 0, ticket);
        for spec in &plan.specs {
            let class = spec.classify(&t);
            if rel == step.coarsens() {
                prop_assert_eq!(class, StateClass::KeepAndMigrate);
            } else {
                prop_assert!(matches!(class, StateClass::Keep | StateClass::Discard));
                // The partner keeps exactly the complement.
                let partner = &plan.specs[spec.partner];
                let partner_class = partner.classify(&t);
                prop_assert_ne!(
                    class == StateClass::Keep,
                    partner_class == StateClass::Keep,
                    "partners must keep complementary halves"
                );
            }
        }
    }

    /// §4.2.2 elasticity (Fig. 5): for ANY starting grid and ANY stored
    /// tuple, [`ExpandSpec::destinations`] routes each of the tuple's
    /// stored copies to exactly the machines whose post-expansion grid
    /// cells cover it — no loss, no double-store. This is the invariant
    /// the live expansion protocol's exactness rests on.
    #[test]
    fn expansion_destinations_cover_grid_exactly(
        mapping in mapping_strategy(),
        tickets in prop::collection::vec((any::<u64>(), any::<bool>()), 1..60),
    ) {
        let assign = GridAssignment::initial(mapping);
        let plan = plan_expansion(&assign);
        let mut next = assign.clone();
        next.apply_expansion();
        let np = next.mapping();
        prop_assert_eq!(np, Mapping::new(mapping.n * 2, mapping.m * 2));
        for (i, (ticket, is_r)) in tickets.iter().enumerate() {
            let rel = if *is_r { Rel::R } else { Rel::S };
            let t = Tuple::new(rel, i as u64, 0, *ticket);
            // The machines storing t before the expansion (its row or
            // column), and the machines that must store it after.
            let holders: Vec<usize> = match rel {
                Rel::R => assign
                    .machines_for_row(partition(*ticket, mapping.n))
                    .collect(),
                Rel::S => assign
                    .machines_for_col(partition(*ticket, mapping.m))
                    .collect(),
            };
            let mut expected: Vec<usize> = match rel {
                Rel::R => next.machines_for_row(partition(*ticket, np.n)).collect(),
                Rel::S => next.machines_for_col(partition(*ticket, np.m)).collect(),
            };
            // Fan every stored copy out per its holder's spec.
            let mut actual: Vec<usize> = Vec::new();
            for &h in &holders {
                let spec = plan.specs[h];
                let d = spec.destinations(&t);
                prop_assert!(d.sends() <= 2, "per-copy fan-out beyond Theorem 4.3");
                if d.keep {
                    actual.push(h);
                }
                for (child, go) in spec.children.iter().zip([d.to_01, d.to_10, d.to_11]) {
                    if go {
                        actual.push(*child);
                    }
                }
            }
            expected.sort_unstable();
            actual.sort_unstable();
            prop_assert_eq!(
                actual, expected,
                "copies of {:?} tuple with ticket {:#x} not partitioned to its covering cells",
                rel, ticket
            );
        }
    }

    /// After a migration step, the union of kept state across a partner
    /// pair covers the merged partition exactly once per new owner.
    #[test]
    fn exchange_covers_merged_partition(
        mapping in mapping_strategy(),
        tickets in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        prop_assume!(mapping.n >= 2);
        let assign = GridAssignment::initial(mapping);
        let plan = plan_step(&assign, Step::HalveRows);
        // For every R tuple and every new grid cell, exactly one of the
        // machines mapped there must own it post-migration.
        let mut next = assign.clone();
        next.apply_step(Step::HalveRows);
        let np = next.mapping();
        for (i, ticket) in tickets.iter().enumerate() {
            let _t = Tuple::new(Rel::R, i as u64, 0, *ticket);
            let new_row = partition(*ticket, np.n);
            for col in 0..np.m {
                let machine = next.machine_at(new_row, col);
                let spec = &plan.specs[machine];
                // The machine ends up with the tuple either because it kept
                // it (it held the tuple's old row) or because its partner
                // exchanged it over.
                let old_row = partition(*ticket, mapping.n);
                let had_it = spec.old_pos.row == old_row;
                let partner_had_it = plan.specs[spec.partner].old_pos.row == old_row;
                prop_assert!(
                    had_it || partner_had_it,
                    "machine {} at new ({},{}) can't obtain tuple with old row {}",
                    machine, new_row, col, old_row
                );
            }
        }
    }
}
