//! The eventually consistent, non-blocking migration protocol
//! (Alg. 3, §4.3.1).
//!
//! Blocking state relocation stalls the stream for as long as the transfer
//! takes — unacceptable for operators holding full history. Instead, the
//! operator divides execution into **epochs**: every mapping change
//! increments the epoch, reshufflers tag tuples with the epoch they route
//! under, and joiners reason about four tuple sets:
//!
//! * `τ` — state received before the migration decision,
//! * `Δ` — tuples tagged with the *old* epoch arriving during migration
//!   (routed under the old mapping by reshufflers that had not yet heard),
//! * `Δ′` — tuples tagged with the *new* epoch (already routed correctly),
//! * `µ` — state copies received from the exchange partner.
//!
//! Lemma 4.6 decomposes the correct output into seven joins; Alg. 3
//! computes each exactly once while tuples keep flowing:
//!
//! | event                   | joins emitted                                 |
//! |-------------------------|-----------------------------------------------|
//! | old-epoch tuple `t`     | `{t} ⋈ (τ ∪ Δ)`; if `t ∈ Keep`: `{t} ⋈ Δ′`    |
//! | new-epoch tuple `t`     | `{t} ⋈ (µ ∪ Δ′)`; `{t} ⋈ Keep(τ ∪ Δ)`         |
//! | migration tuple `t`     | `{t} ⋈ Δ′`                                    |
//!
//! Old-epoch tuples of the coarsening relation are additionally forwarded
//! to the partner (they are part of the exchanged state). When a joiner has
//! received the epoch-change signal from **every** reshuffler (FIFO
//! channels ⇒ no more old-epoch tuples can arrive) and the partner's
//! end-of-state marker, it *finalises*: discards are dropped and
//! `τ ← Keep(τ∪Δ) ∪ µ ∪ Δ′` — the state is consistent with the new mapping
//! (Theorem 4.5).
//!
//! The ordering contract this module demands from its host (satisfied by
//! `aoj-simnet`'s channels and message classes):
//!
//! 1. per-channel FIFO between any two tasks *within a message class*;
//! 2. a reshuffler's epoch signal travels in the same class/channel as its
//!    data tuples;
//! 3. the partner's end marker travels in the same class/channel as
//!    migration state.
//!
//! ## Elastic expansion (§4.2.2, Fig. 5)
//!
//! The same state machine also hosts the ×4 **expansion** protocol, where
//! the mapping goes `(n, m) → (2n, 2m)` and every machine splits into
//! four. The correctness argument is the migration argument with the
//! partner exchange replaced by a parent → children **fan-out**:
//!
//! * a **parent** treats the expansion like a migration in which it keeps
//!   only the state landing in child `(0,0)` and ships every stored tuple
//!   to the 1–2 children whose new grid cells cover it
//!   ([`ExpandSpec::destinations`]); it expects no partner state, so it
//!   finalises as soon as every reshuffler has signalled;
//! * a **child** starts *unborn* — empty state, no epoch. New-epoch
//!   tuples routed to it accumulate in `Δ′` (probing `µ ∪ Δ′`, exactly
//!   Alg. 3's new-epoch path with `Keep(τ ∪ Δ) = ∅`), parent state
//!   accumulates in `µ` (probing `Δ′`), and the parent's end-of-state
//!   marker — FIFO behind all of `µ` on the Migration channel — is the
//!   only completion condition: every old tuple relevant to the child
//!   flows through its parent, so no reshuffler signals are needed. At
//!   *birth* the child finalises `τ ← µ ∪ Δ′` and joins the cluster as a
//!   normal joiner at the expansion epoch.
//!
//! Every old×old pair was emitted at the parent level, every old×new and
//! new×new pair is emitted at exactly the one machine whose new grid cell
//! covers it — the seven-join decomposition of Lemma 4.6 carries over
//! with `µ` sourced from one parent instead of one partner.
//!
//! ## Elastic contraction (the reverse 4→1 merge)
//!
//! The same machinery also hosts the **contraction**, where each aligned
//! 2×2 cell group merges into one survivor and the mapping goes
//! `(n, m) → (n/2, m/2)`. It is the migration argument with the partner
//! exchange replaced by a retiree → survivor **fan-in**:
//!
//! * the **survivor** runs Alg. 3 with `Keep(τ ∪ Δ) = τ ∪ Δ` (its whole
//!   cell is inside the merged cell, so nothing is discarded) and `µ`
//!   sourced from its three retirees instead of one partner — it expects
//!   three end-of-state markers, each FIFO behind that retiree's state on
//!   the Migration channel;
//! * a **retiree** runs Alg. 3 with `Keep(τ ∪ Δ) = ∅`: old-epoch tuples
//!   probe `τ ∪ Δ` exactly as usual (that emission is *not* covered by
//!   the survivor, which never stored the retiree's complement
//!   partitions), and tuples of the retiree's *forward relation* — S for
//!   the survivor's row sibling, R for its column sibling, nothing for
//!   the diagonal — are shipped to the survivor like step-migration
//!   state. New-epoch tuples can never arrive (reshufflers only route to
//!   survivors under the contracted mapping), so the retiree finalises as
//!   soon as every reshuffler has signalled: it discards everything and
//!   goes **dormant** — back to the unborn-child state, ready for a later
//!   expansion to re-activate it.
//!
//! Exactly-once coverage: each old×old pair is emitted at the unique old
//! cell covering it (retirees keep probing until their Δ closes); each
//! new×old pair at the survivor (via `Keep(τ ∪ Δ)` for its own state,
//! via `µ ⋈ Δ′` for forwarded state — the forward pattern delivers each
//! retiree-held tuple to the survivor exactly once); each new×new pair at
//! the survivor via `Δ′`. The diagonal retiree forwards nothing because
//! both of its partitions reach the survivor from the other two retirees.

use crate::elastic::{ContractRole, ExpandDestinations, ExpandSpec};
use crate::index::{JoinIndex, ProbeStats};
use crate::lifecycle::EvictStats;
use crate::migration::MachineStepSpec;
use crate::tuple::{Rel, Tuple};

/// Epoch counter. The system starts in epoch 0; each migration increments.
pub type Epoch = u32;

/// Outcome of feeding one data tuple to the joiner.
#[derive(Clone, Copy, Debug, Default)]
pub struct DataOutcome {
    /// Probe statistics accumulated across all sets probed.
    pub stats: ProbeStats,
    /// The caller must forward a copy of the tuple to the exchange partner
    /// (old-epoch tuple of the coarsening relation, Alg. 3 line 19–20).
    pub forward_to_partner: bool,
    /// Expansion parents only: the caller must forward copies of this
    /// old-epoch tuple to the children selected by the destinations (the
    /// Δ analogue of the Fig. 5 state fan-out).
    pub expand_forward: Option<ExpandDestinations>,
}

/// What kind of reconfiguration this joiner is executing, and its role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MigrationRole {
    /// A one-step migration (Lemma 4.4): partner exchange + keep bit.
    Step(MachineStepSpec),
    /// A ×4 expansion parent (Fig. 5): split state across four children.
    Expand(ExpandSpec),
    /// A 4→1 contraction survivor: keep everything, absorb three
    /// retirees' state streams.
    Merge,
    /// A 4→1 contraction retiree: keep nothing, forward `forward_rel`
    /// of the state to the survivor, then go dormant.
    Retire {
        /// The relation this retiree ships (None for the diagonal).
        forward_rel: Option<Rel>,
    },
}

impl MigrationRole {
    /// Does this machine's post-reconfiguration state include `t`?
    fn keeps(&self, t: &Tuple) -> bool {
        match self {
            MigrationRole::Step(spec) => spec.is_kept(t),
            MigrationRole::Expand(spec) => spec.destinations(t).keep,
            MigrationRole::Merge => true,
            MigrationRole::Retire { .. } => false,
        }
    }

    /// End-of-state markers this role waits for before finalising.
    fn partners_expected(&self) -> usize {
        match self {
            MigrationRole::Step(_) => 1,
            // Expansion parents and contraction retirees receive no
            // relocated state.
            MigrationRole::Expand(_) | MigrationRole::Retire { .. } => 0,
            // A survivor absorbs all three retirees of its group.
            MigrationRole::Merge => 3,
        }
    }
}

/// Outcome of an epoch-change signal.
#[derive(Clone, Copy, Debug, Default)]
pub struct SignalOutcome {
    /// First signal of this migration: the caller must ship
    /// [`EpochJoiner::migration_snapshot`] to the partner (Alg. 3 line 3).
    pub start_migration: bool,
    /// All reshufflers have signalled: the caller must send the
    /// end-of-state marker to the partner.
    pub all_signals: bool,
}

/// Result of finalising a migration (for cost accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FinalizeSummary {
    /// Tuples dropped (the `Discard` class).
    pub discarded: u64,
    /// Tuples merged into the new `τ` from `Δ`, `µ` and `Δ′`.
    pub merged: u64,
}

/// Per-joiner state machine implementing Alg. 3 over pluggable
/// [`JoinIndex`] state.
pub struct EpochJoiner {
    epoch: Epoch,
    migrating: bool,
    new_epoch: Epoch,
    role: Option<MigrationRole>,
    signals: Vec<bool>,
    signals_remaining: usize,
    /// End-of-state markers received for the in-flight reconfiguration.
    /// Counted, not boolean: a contraction survivor fans in three
    /// retirees' streams where a step migration has one partner.
    partners_done: usize,
    /// Markers required before finalising (set when the role is learned;
    /// markers may legitimately arrive first).
    partners_expected: usize,
    n_reshufflers: usize,
    /// False for a dormant expansion child that has not finalised its
    /// birth yet (see the module docs on elastic expansion).
    born: bool,
    /// The expansion epoch an unborn child will adopt at birth, learned
    /// from the first new-epoch tuple or the parent's end marker.
    birth_epoch: Option<Epoch>,

    tau: Box<dyn JoinIndex>,
    delta: Box<dyn JoinIndex>,
    delta_prime: Box<dyn JoinIndex>,
    mu: Box<dyn JoinIndex>,

    /// Total matches emitted by this joiner (diagnostics / reports).
    pub matches_emitted: u64,
}

impl EpochJoiner {
    /// Create a joiner with empty state. `make_index` builds one
    /// [`JoinIndex`] per tuple set; `n_reshufflers` is the number of
    /// epoch-change signals to expect per migration.
    pub fn new(make_index: &dyn Fn() -> Box<dyn JoinIndex>, n_reshufflers: usize) -> EpochJoiner {
        EpochJoiner {
            epoch: 0,
            migrating: false,
            new_epoch: 0,
            role: None,
            signals: vec![false; n_reshufflers],
            signals_remaining: 0,
            partners_done: 0,
            partners_expected: 1,
            n_reshufflers,
            born: true,
            birth_epoch: None,
            tau: make_index(),
            delta: make_index(),
            delta_prime: make_index(),
            mu: make_index(),
            matches_emitted: 0,
        }
    }

    /// Create a dormant expansion child: provisioned but unborn. It holds
    /// no state and expects no signals; it wakes up when its parent's
    /// expansion state (µ), new-epoch data (Δ′) or the parent's
    /// end-of-state marker first reaches it, and joins the cluster as a
    /// normal joiner at [`birth`](EpochJoiner::on_parent_done).
    pub fn new_dormant(
        make_index: &dyn Fn() -> Box<dyn JoinIndex>,
        n_reshufflers: usize,
    ) -> EpochJoiner {
        let mut j = EpochJoiner::new(make_index, n_reshufflers);
        j.born = false;
        j
    }

    /// Reconstruct a stable joiner from checkpointed state: `tuples` are
    /// the live τ set of a quiesced joiner at `epoch`, inserted and then
    /// sealed into one segment so the restored bulk expires wholesale
    /// under windowed eviction (see [`crate::lifecycle`]).
    pub fn restored(
        make_index: &dyn Fn() -> Box<dyn JoinIndex>,
        n_reshufflers: usize,
        epoch: Epoch,
        tuples: &[Tuple],
    ) -> EpochJoiner {
        let mut j = EpochJoiner::new(make_index, n_reshufflers);
        j.epoch = epoch;
        j.new_epoch = epoch;
        j.tau.insert_batch(tuples);
        j.tau.seal_segment();
        j
    }

    /// Seal the live (τ) index's active run into a sub-window segment
    /// (see [`JoinIndex::seal_segment`]). Called by the windowed-eviction
    /// driver at sub-window boundaries; τ only — the migration sets Δ, Δ′
    /// and µ are transient and merge away at finalisation.
    pub fn seal_live_segment(&mut self) {
        self.tau.seal_segment();
    }

    /// Drop expired τ segments (see [`JoinIndex::evict_before`]). Only
    /// legal while **stable**: eviction at epoch boundaries never races a
    /// migration's state partitioning, so Alg. 3's marker-FIFO argument
    /// is untouched.
    pub fn evict_before(&mut self, bound: u64) -> EvictStats {
        assert!(
            self.born && !self.migrating,
            "windowed eviction must only run on a stable joiner"
        );
        self.tau.evict_before(bound)
    }

    /// Sealed sub-window segments currently held by τ (occupancy stats).
    pub fn sealed_segments(&self) -> usize {
        self.tau.sealed_segments()
    }

    /// The live τ tuples of a quiesced joiner, for a checkpoint. Panics
    /// if a reconfiguration is in flight — checkpoints are taken at
    /// quiesced migration checkpoints only, where Δ, Δ′ and µ are empty.
    pub fn live_snapshot(&self) -> Vec<Tuple> {
        assert!(
            !self.migrating,
            "checkpoint requires a quiesced (stable) joiner"
        );
        debug_assert_eq!(self.delta.len() + self.delta_prime.len() + self.mu.len(), 0);
        self.tau.snapshot()
    }

    /// True once this joiner participates in the cluster (always, except
    /// for a dormant expansion child before its birth finalisation).
    #[inline]
    pub fn is_born(&self) -> bool {
        self.born
    }

    /// Current (finalised) epoch.
    #[inline]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// True while a migration is in flight.
    #[inline]
    pub fn is_migrating(&self) -> bool {
        self.migrating
    }

    /// Stored tuples across all four sets.
    pub fn stored_tuples(&self) -> usize {
        self.tau.len() + self.delta.len() + self.delta_prime.len() + self.mu.len()
    }

    /// Stored tuples of one relation across all four sets.
    pub fn stored_tuples_rel(&self, rel: Rel) -> usize {
        self.tau.len_rel(rel)
            + self.delta.len_rel(rel)
            + self.delta_prime.len_rel(rel)
            + self.mu.len_rel(rel)
    }

    /// Stored bytes across all four sets (the joiner's ILF contribution).
    pub fn stored_bytes(&self) -> u64 {
        self.tau.bytes() + self.delta.bytes() + self.delta_prime.bytes() + self.mu.bytes()
    }

    /// Set sizes `[τ, Δ, Δ′, µ]` (diagnostics).
    pub fn set_sizes(&self) -> [usize; 4] {
        [
            self.tau.len(),
            self.delta.len(),
            self.delta_prime.len(),
            self.mu.len(),
        ]
    }

    fn emit(incoming: &Tuple, stored: &Tuple, out: &mut dyn FnMut(&Tuple, &Tuple)) {
        // Normalise output pairs to (r, s).
        if incoming.rel == Rel::R {
            out(incoming, stored);
        } else {
            out(stored, incoming);
        }
    }

    /// Feed a data tuple tagged with `tag` by its reshuffler.
    ///
    /// Panics if the protocol invariants are violated (a tag more than one
    /// epoch away, or an old-epoch tuple after all signals) — Theorem 4.6
    /// guarantees these cannot happen under a compliant host.
    pub fn on_data(
        &mut self,
        tag: Epoch,
        t: Tuple,
        out: &mut dyn FnMut(&Tuple, &Tuple),
    ) -> DataOutcome {
        let mut outcome = DataOutcome::default();
        let mut matches = 0u64;
        if !self.born {
            // Unborn expansion child: everything routed here is new-epoch
            // by construction (reshufflers only target this machine under
            // the expanded mapping). Alg. 3's new-epoch path with
            // `Keep(τ ∪ Δ) = ∅`.
            let birth = *self.birth_epoch.get_or_insert(tag);
            assert_eq!(tag, birth, "unborn child saw data from two epochs");
            let mut cb = |stored: &Tuple| {
                matches += 1;
                Self::emit(&t, stored, out);
            };
            outcome.stats += self.mu.probe(&t, &mut cb);
            outcome.stats += self.delta_prime.probe(&t, &mut cb);
            self.delta_prime.insert(t);
            self.matches_emitted += matches;
            return outcome;
        }
        if !self.migrating {
            assert_eq!(tag, self.epoch, "stable joiner got tuple from epoch {tag}");
            let mut cb = |stored: &Tuple| {
                matches += 1;
                Self::emit(&t, stored, out);
            };
            outcome.stats += self.tau.probe(&t, &mut cb);
            self.tau.insert(t);
        } else if tag == self.epoch {
            // Old-epoch tuple: Alg. 3 HandleTuple1, lines 15–20.
            assert!(
                self.signals_remaining > 0,
                "old-epoch tuple after all reshuffler signals (FIFO violation)"
            );
            let role = self.role.expect("migrating implies a role");
            {
                let mut cb = |stored: &Tuple| {
                    matches += 1;
                    Self::emit(&t, stored, out);
                };
                // {t} ⋈ (τ ∪ Δ)
                outcome.stats += self.tau.probe(&t, &mut cb);
                outcome.stats += self.delta.probe(&t, &mut cb);
            }
            if role.keeps(&t) {
                // t ∈ Keep(Δ): {t} ⋈ Δ′
                let mut cb = |stored: &Tuple| {
                    matches += 1;
                    Self::emit(&t, stored, out);
                };
                outcome.stats += self.delta_prime.probe(&t, &mut cb);
            }
            match role {
                MigrationRole::Step(spec) => {
                    outcome.forward_to_partner = spec.is_migrated(&t);
                }
                MigrationRole::Expand(spec) => {
                    // A Δ tuple is part of the state being split: copies
                    // go to every child whose new cell covers it.
                    outcome.expand_forward = Some(spec.destinations(&t));
                }
                // A survivor's Δ is entirely inside the merged cell:
                // nothing to forward.
                MigrationRole::Merge => {}
                MigrationRole::Retire { forward_rel } => {
                    // A retiree's Δ tuple of its forward relation is part
                    // of the state being merged into the survivor; the
                    // other relation's copies reach the survivor through
                    // its row/column siblings (or its own replicas).
                    outcome.forward_to_partner = forward_rel == Some(t.rel);
                }
            }
            self.delta.insert(t);
        } else {
            // New-epoch tuple: Alg. 3 lines 12–14 / 24–26.
            assert_eq!(
                tag, self.new_epoch,
                "tuple from epoch {tag} while migrating {} -> {}",
                self.epoch, self.new_epoch
            );
            let role = self.role.expect("migrating implies a role");
            assert!(
                !matches!(role, MigrationRole::Retire { .. }),
                "retiring joiner received new-epoch data (reshufflers must \
                 only route to survivors under the contracted mapping)"
            );
            {
                // {t} ⋈ (µ ∪ Δ′)
                let mut cb = |stored: &Tuple| {
                    matches += 1;
                    Self::emit(&t, stored, out);
                };
                outcome.stats += self.mu.probe(&t, &mut cb);
                outcome.stats += self.delta_prime.probe(&t, &mut cb);
            }
            {
                // {t} ⋈ Keep(τ ∪ Δ)
                let mut filter = |stored: &Tuple| role.keeps(stored);
                let mut cb = |stored: &Tuple| {
                    matches += 1;
                    Self::emit(&t, stored, out);
                };
                outcome.stats += self.tau.probe_filtered(&t, &mut filter, &mut cb);
                outcome.stats += self.delta.probe_filtered(&t, &mut filter, &mut cb);
            }
            self.delta_prime.insert(t);
        }
        self.matches_emitted += matches;
        outcome
    }

    /// True when [`on_data_batch`](EpochJoiner::on_data_batch)'s bulk
    /// fast path is valid for tuples tagged `tag`: a born, stable joiner
    /// in that epoch. Mid-migration (or unborn) there are extra sets to
    /// consult and forwarding decisions to make, so callers must fall
    /// back to per-tuple [`on_data`](EpochJoiner::on_data).
    #[inline]
    pub fn stable_for(&self, tag: Epoch) -> bool {
        self.born && !self.migrating && tag == self.epoch
    }

    /// Bulk fast path for a coalesced batch of stable-phase data tuples:
    /// `τ` is the only live set, so the whole batch goes through the
    /// index's bulk probe/insert operations
    /// ([`process_stream_batch`](crate::index::process_stream_batch)) —
    /// semantically identical to feeding each tuple to
    /// [`on_data`](EpochJoiner::on_data) in order, including intra-batch
    /// pairs. `out(i, stored)` receives the batch index of the *probing*
    /// tuple (for per-tuple latency attribution) plus the stored partner
    /// — on a hot path with hundreds of matches per tuple this is the
    /// innermost loop, so the `(r, s)` normalisation `on_data` performs
    /// is left to the caller (who knows `batch[i]`), saving a closure
    /// layer per match.
    pub fn on_data_batch(
        &mut self,
        tag: Epoch,
        batch: &[Tuple],
        out: &mut dyn FnMut(usize, &Tuple),
    ) -> ProbeStats {
        assert!(
            self.stable_for(tag),
            "bulk data path requires a stable joiner at the batch epoch"
        );
        let stats = crate::index::process_stream_batch(self.tau.as_mut(), batch, out);
        self.matches_emitted += stats.matches;
        stats
    }

    /// An epoch-change signal from reshuffler `from`, carrying the new
    /// epoch index, this machine's migration role, and the number of
    /// reshufflers that route old-epoch data (and therefore must signal):
    /// the **active** reshuffler count at the moment of the change, which
    /// under trigger-time provisioning is no longer a constant.
    pub fn on_signal(
        &mut self,
        from: usize,
        new_epoch: Epoch,
        spec: MachineStepSpec,
        expected_signals: usize,
    ) -> SignalOutcome {
        self.begin_reconfiguration(from, new_epoch, MigrationRole::Step(spec), expected_signals)
    }

    /// An expansion signal from reshuffler `from` (§4.2.2): this machine is
    /// a **parent** splitting into four. Like [`EpochJoiner::on_signal`], the signal
    /// travels FIFO behind the reshuffler's data; on the first one the
    /// caller must ship [`expansion_snapshot`](EpochJoiner::expansion_snapshot)
    /// to the children, and after the last one send each child the
    /// end-of-state marker. Parents receive no partner state, so they are
    /// ready to finalise as soon as every reshuffler has signalled.
    pub fn on_expand_signal(
        &mut self,
        from: usize,
        new_epoch: Epoch,
        spec: ExpandSpec,
        expected_signals: usize,
    ) -> SignalOutcome {
        self.begin_reconfiguration(
            from,
            new_epoch,
            MigrationRole::Expand(spec),
            expected_signals,
        )
    }

    /// A contraction signal from reshuffler `from`: this machine is either
    /// the **survivor** of its 2×2 group (merge everything, await three
    /// end-of-state markers) or a **retiree** (forward its role's relation
    /// to the survivor, then go dormant at finalisation). On a retiree's
    /// first signal the caller must ship
    /// [`migration_snapshot`](EpochJoiner::migration_snapshot) to the
    /// survivor, and after its last signal send the survivor the
    /// end-of-state marker.
    pub fn on_contract_signal(
        &mut self,
        from: usize,
        new_epoch: Epoch,
        role: ContractRole,
        expected_signals: usize,
    ) -> SignalOutcome {
        let role = match role {
            ContractRole::Survive => MigrationRole::Merge,
            ContractRole::Retire { forward_rel, .. } => MigrationRole::Retire { forward_rel },
        };
        self.begin_reconfiguration(from, new_epoch, role, expected_signals)
    }

    fn begin_reconfiguration(
        &mut self,
        from: usize,
        new_epoch: Epoch,
        role: MigrationRole,
        expected_signals: usize,
    ) -> SignalOutcome {
        assert!(self.born, "dormant child received a reshuffler signal");
        let mut outcome = SignalOutcome::default();
        if !self.migrating {
            assert_eq!(
                new_epoch,
                self.epoch + 1,
                "signal must advance the epoch by one"
            );
            self.migrating = true;
            self.new_epoch = new_epoch;
            self.role = Some(role);
            self.signals.iter_mut().for_each(|s| *s = false);
            assert!(
                expected_signals >= 1 && expected_signals <= self.n_reshufflers,
                "expected signal count {expected_signals} outside 1..={}",
                self.n_reshufflers
            );
            self.signals_remaining = expected_signals;
            self.partners_expected = role.partners_expected();
            assert!(
                self.partners_done <= self.partners_expected,
                "more end-of-state markers than this role's senders"
            );
            outcome.start_migration = true;
        } else {
            assert_eq!(new_epoch, self.new_epoch, "overlapping migrations");
            debug_assert_eq!(self.role, Some(role));
        }
        assert!(
            !self.signals[from],
            "duplicate signal from reshuffler {from}"
        );
        self.signals[from] = true;
        self.signals_remaining -= 1;
        outcome.all_signals = self.signals_remaining == 0;
        outcome
    }

    /// The state to ship when a migration (or contraction) starts: for a
    /// step migration, copies of all stored tuples of the coarsening
    /// relation (Alg. 3 line 3, "Send τ for migration" — the tuples stay
    /// in `τ`, the exchange keeps both halves, Lemma 4.4); for a
    /// contraction retiree, all stored tuples of its forward relation
    /// (empty for the diagonal retiree).
    pub fn migration_snapshot(&self) -> Vec<Tuple> {
        let rel = match self.role {
            Some(MigrationRole::Step(spec)) => Some(spec.exchange_rel),
            Some(MigrationRole::Retire { forward_rel }) => match forward_rel {
                Some(rel) => Some(rel),
                None => return Vec::new(),
            },
            _ => panic!("migration snapshot requires a step migration or a retiring role"),
        };
        let mut snap = Vec::new();
        self.tau.for_each(&mut |t| {
            if Some(t.rel) == rel {
                snap.push(*t);
            }
        });
        snap
    }

    /// True while this joiner is a contraction retiree mid-merge.
    #[inline]
    pub fn is_retiring(&self) -> bool {
        self.migrating && matches!(self.role, Some(MigrationRole::Retire { .. }))
    }

    /// True while this joiner is a contraction survivor mid-merge.
    #[inline]
    pub fn is_merging(&self) -> bool {
        self.migrating && matches!(self.role, Some(MigrationRole::Merge))
    }

    /// The state an expansion parent ships to its children when the
    /// expansion starts: **every** stored tuple of `τ`, of both relations
    /// (Fig. 5 splits along both ticket axes). The caller classifies each
    /// tuple with [`ExpandSpec::destinations`] and sends copies to the
    /// 1–2 children that cover it; kept tuples stay in `τ` and the
    /// non-kept ones are dropped at finalisation.
    pub fn expansion_snapshot(&self) -> Vec<Tuple> {
        assert!(
            matches!(self.role, Some(MigrationRole::Expand(_))),
            "expansion snapshot requires an active expansion"
        );
        let mut snap = Vec::with_capacity(self.tau.len());
        self.tau.for_each(&mut |t| snap.push(*t));
        snap
    }

    /// A migration tuple received from the partner (Alg. 3 lines 10–11 /
    /// 22–23): `{t} ⋈ Δ′`, then `µ ← µ ∪ {t}`.
    ///
    /// May legitimately arrive before this joiner's own first signal (the
    /// partner heard about the migration first); `µ` is phase-independent.
    pub fn on_migration_tuple(
        &mut self,
        t: Tuple,
        out: &mut dyn FnMut(&Tuple, &Tuple),
    ) -> ProbeStats {
        let mut matches = 0u64;
        let stats = {
            let mut cb = |stored: &Tuple| {
                matches += 1;
                Self::emit(&t, stored, out);
            };
            self.delta_prime.probe(&t, &mut cb)
        };
        self.mu.insert(t);
        self.matches_emitted += matches;
        stats
    }

    /// An end-of-state marker arrived: one sender's relocated state is
    /// fully in. A step migration expects one (the exchange partner); a
    /// contraction survivor expects three (its retirees).
    pub fn on_partner_done(&mut self) {
        assert!(self.born, "expansion children use on_parent_done");
        self.partners_done += 1;
        if self.migrating {
            assert!(
                self.partners_done <= self.partners_expected,
                "more end-of-state markers than this role's senders"
            );
        } else {
            // The sender heard about the reconfiguration first; the
            // largest legitimate fan-in is a survivor's three retirees.
            assert!(self.partners_done <= 3, "spurious end-of-state marker");
        }
    }

    /// An expansion child's parent sent its end-of-state marker, carrying
    /// the expansion epoch: all of `µ` is in, and — because every old
    /// tuple relevant to this child flows through the parent — no further
    /// old state can arrive. The child is now ready for its birth
    /// finalisation.
    pub fn on_parent_done(&mut self, epoch: Epoch) {
        assert!(!self.born, "only unborn children receive a parent marker");
        assert!(self.partners_done == 0, "duplicate end-of-state marker");
        let birth = *self.birth_epoch.get_or_insert(epoch);
        assert_eq!(epoch, birth, "parent marker disagrees with data epoch");
        self.partners_done = 1;
    }

    /// True when the migration can be finalised: every reshuffler has
    /// signalled and every expected sender's state is fully received. An
    /// unborn expansion child needs only its parent's end-of-state marker.
    pub fn ready_to_finalize(&self) -> bool {
        if !self.born {
            return self.partners_done > 0;
        }
        self.migrating
            && self.signals_remaining == 0
            && self.partners_done == self.partners_expected
    }

    /// Finalise (Alg. 3 FinalizeMigration): drop discards and merge
    /// `Keep(τ∪Δ) ∪ µ ∪ Δ′` into the new `τ`. Returns counts for cost
    /// accounting. The caller then acks the controller.
    ///
    /// For an unborn expansion child this is the **birth**: `τ ← µ ∪ Δ′`
    /// (nothing to discard — the parent only sent covering state), the
    /// child adopts the expansion epoch and becomes a normal joiner.
    ///
    /// For a contraction retiree this is the **retirement**: every stored
    /// tuple is discarded (the survivor holds the merged cell) and the
    /// joiner goes back to the dormant, unborn state — a later expansion
    /// re-activates it through the ordinary child-birth path. The epoch
    /// advances so the retirement ack carries the contraction epoch.
    pub fn finalize(&mut self) -> FinalizeSummary {
        assert!(self.ready_to_finalize(), "finalize called early");
        let mut summary = FinalizeSummary::default();
        if !self.born {
            for t in self.mu.drain() {
                self.tau.insert(t);
                summary.merged += 1;
            }
            for t in self.delta_prime.drain() {
                self.tau.insert(t);
                summary.merged += 1;
            }
            self.epoch = self
                .birth_epoch
                .take()
                .expect("parent marker always sets the birth epoch");
            self.born = true;
            self.partners_done = 0;
            return summary;
        }
        let role = self.role.take().expect("migrating implies a role");
        if let MigrationRole::Retire { .. } = role {
            // Retirement: nothing survives locally. Δ′ and µ must be
            // empty — no reshuffler routes new-epoch data to a retiree
            // and nobody relocates state into one.
            assert_eq!(self.delta_prime.len(), 0, "retiree accumulated Δ′");
            assert_eq!(self.mu.len(), 0, "retiree received relocated state");
            summary.discarded = (self.tau.len() + self.delta.len()) as u64;
            self.tau.drain();
            self.delta.drain();
            self.epoch = self.new_epoch;
            self.migrating = false;
            self.partners_done = 0;
            self.born = false;
            self.birth_epoch = None;
            return summary;
        }

        // Drop discards still sitting in τ.
        let dropped = self.tau.extract(&mut |t| !role.keeps(t));
        summary.discarded += dropped.len() as u64;

        // Δ: keep survivors, drop the rest.
        for t in self.delta.drain() {
            if role.keeps(&t) {
                self.tau.insert(t);
                summary.merged += 1;
            } else {
                summary.discarded += 1;
            }
        }
        // µ and Δ′ belong wholesale.
        for t in self.mu.drain() {
            self.tau.insert(t);
            summary.merged += 1;
        }
        for t in self.delta_prime.drain() {
            self.tau.insert(t);
            summary.merged += 1;
        }

        self.epoch = self.new_epoch;
        self.migrating = false;
        self.partners_done = 0;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::VecIndex;
    use crate::mapping::{GridAssignment, Mapping, Step};
    use crate::migration::plan_step;
    use crate::predicate::Predicate;
    use crate::ticket::TicketGen;

    fn make_joiner(n_reshufflers: usize) -> EpochJoiner {
        EpochJoiner::new(&|| Box::new(VecIndex::new(Predicate::Equi)), n_reshufflers)
    }

    fn collect_pairs(out: &mut Vec<(u64, u64)>) -> impl FnMut(&Tuple, &Tuple) + '_ {
        |r: &Tuple, s: &Tuple| out.push((r.seq, s.seq))
    }

    #[test]
    fn stable_phase_is_symmetric_hash_join() {
        let mut j = make_joiner(1);
        let mut pairs = Vec::new();
        let r = Tuple::new(Rel::R, 1, 5, 0);
        let s = Tuple::new(Rel::S, 2, 5, 0);
        j.on_data(0, r, &mut collect_pairs(&mut pairs));
        j.on_data(0, s, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(1, 2)]);
        assert_eq!(j.stored_tuples(), 2);
        assert_eq!(j.matches_emitted, 1);
    }

    #[test]
    fn bulk_batch_equals_per_tuple_on_data() {
        let mk = || make_joiner(1);
        let batch: Vec<Tuple> = (0..20)
            .map(|i| {
                let rel = if i % 3 == 0 { Rel::R } else { Rel::S };
                Tuple::new(rel, i, (i as i64 * 7) % 6, i)
            })
            .collect();
        let mut a = mk();
        let mut seq_pairs = Vec::new();
        for t in &batch {
            a.on_data(0, *t, &mut collect_pairs(&mut seq_pairs));
        }
        let mut b = mk();
        assert!(b.stable_for(0));
        let mut bulk_pairs = Vec::new();
        let stats = b.on_data_batch(0, &batch, &mut |i, stored| {
            let t = &batch[i];
            if t.rel == Rel::R {
                bulk_pairs.push((t.seq, stored.seq));
            } else {
                bulk_pairs.push((stored.seq, t.seq));
            }
        });
        seq_pairs.sort_unstable();
        bulk_pairs.sort_unstable();
        assert_eq!(seq_pairs, bulk_pairs);
        assert_eq!(a.matches_emitted, b.matches_emitted);
        assert_eq!(stats.matches, b.matches_emitted);
        assert_eq!(a.stored_tuples(), b.stored_tuples());
        assert_eq!(a.stored_bytes(), b.stored_bytes());
    }

    #[test]
    fn stable_for_rejects_migration_and_wrong_epoch() {
        let (mut a, _b, plan) = mid_migration_pair();
        assert!(a.stable_for(0));
        assert!(!a.stable_for(1));
        a.on_signal(0, 1, plan.specs[0], 2);
        assert!(
            !a.stable_for(0),
            "mid-migration batches need per-tuple handling"
        );
        assert!(!a.stable_for(1));
    }

    /// Build a two-joiner world mid-migration: (2,1) -> (1,2). Machine 0
    /// and machine 1 are partners exchanging R; S refines from 1 part to 2.
    fn mid_migration_pair() -> (EpochJoiner, EpochJoiner, crate::migration::MigrationPlan) {
        let assign = GridAssignment::initial(Mapping::new(2, 1));
        let plan = plan_step(&assign, Step::HalveRows);
        let a = make_joiner(2);
        let b = make_joiner(2);
        (a, b, plan)
    }

    #[test]
    fn signal_protocol_tracks_start_and_completion() {
        let (mut a, _b, plan) = mid_migration_pair();
        let s0 = a.on_signal(0, 1, plan.specs[0], 2);
        assert!(s0.start_migration);
        assert!(!s0.all_signals);
        assert!(a.is_migrating());
        let s1 = a.on_signal(1, 1, plan.specs[0], 2);
        assert!(!s1.start_migration);
        assert!(s1.all_signals);
        assert!(!a.ready_to_finalize());
        a.on_partner_done();
        assert!(a.ready_to_finalize());
        let summary = a.finalize();
        assert_eq!(summary, FinalizeSummary::default());
        assert_eq!(a.epoch(), 1);
        assert!(!a.is_migrating());
    }

    #[test]
    fn old_epoch_r_tuple_is_forwarded_and_joined() {
        let (mut a, _b, plan) = mid_migration_pair();
        let mut pairs = Vec::new();
        // Pre-migration state: one S tuple in τ.
        let s_old = Tuple::new(Rel::S, 1, 7, 0); // refine_bit(0, 1) == 0
        a.on_data(0, s_old, &mut collect_pairs(&mut pairs));
        // Migration starts.
        a.on_signal(0, 1, plan.specs[0], 2);
        // Old-epoch R tuple arrives: joins τ∪Δ (the S tuple), forwarded.
        let r_old = Tuple::new(Rel::R, 2, 7, 0);
        let outcome = a.on_data(0, r_old, &mut collect_pairs(&mut pairs));
        assert!(
            outcome.forward_to_partner,
            "coarsening-relation Δ tuple must migrate"
        );
        assert_eq!(pairs, vec![(2, 1)]);
    }

    #[test]
    fn new_epoch_tuple_joins_keep_but_not_discard() {
        let (mut a, _b, plan) = mid_migration_pair();
        let spec = plan.specs[0];
        assert_eq!(spec.keep_bit, 0, "machine 0 at row 0 keeps bit 0");
        let mut pairs = Vec::new();
        // τ holds two S tuples: one kept (bit 0) and one discarded (bit 1).
        let s_keep = Tuple::new(Rel::S, 1, 7, 0); // refine_bit = 0
        let s_drop = Tuple::new(Rel::S, 2, 7, 1 << 63); // refine_bit = 1
        a.on_data(0, s_keep, &mut collect_pairs(&mut pairs));
        a.on_data(0, s_drop, &mut collect_pairs(&mut pairs));
        a.on_signal(0, 1, spec, 2);
        // New-epoch R tuple: joins µ ∪ Δ′ (empty) and Keep(τ∪Δ) = {s_keep}.
        let r_new = Tuple::new(Rel::R, 3, 7, 0);
        a.on_data(1, r_new, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(3, 1)], "must join the kept S tuple only");
    }

    #[test]
    fn migration_tuples_join_delta_prime_only() {
        let (mut a, _b, plan) = mid_migration_pair();
        let mut pairs = Vec::new();
        a.on_signal(0, 1, plan.specs[0], 2);
        // Δ′ gets an S tuple.
        let s_new = Tuple::new(Rel::S, 1, 9, 0);
        a.on_data(1, s_new, &mut collect_pairs(&mut pairs));
        assert!(pairs.is_empty());
        // Partner's R state arrives: joins Δ′.
        let r_mu = Tuple::new(Rel::R, 2, 9, u64::MAX);
        a.on_migration_tuple(r_mu, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(2, 1)]);
        // A second Δ′ S tuple must see µ.
        let s_new2 = Tuple::new(Rel::S, 3, 9, 0);
        a.on_data(1, s_new2, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(2, 1), (2, 3)]);
    }

    #[test]
    fn migration_tuple_before_any_signal_is_buffered_in_mu() {
        let (mut a, _b, plan) = mid_migration_pair();
        let mut pairs = Vec::new();
        // Partner was faster: its state arrives while a is still stable.
        let r_mu = Tuple::new(Rel::R, 1, 4, u64::MAX);
        a.on_migration_tuple(r_mu, &mut collect_pairs(&mut pairs));
        assert!(pairs.is_empty());
        assert_eq!(a.set_sizes(), [0, 0, 0, 1]);
        a.on_partner_done();
        // Now the signals arrive and the migration completes.
        a.on_signal(0, 1, plan.specs[0], 2);
        a.on_signal(1, 1, plan.specs[0], 2);
        assert!(a.ready_to_finalize());
        let summary = a.finalize();
        assert_eq!(summary.merged, 1);
        // µ became part of τ: a new S tuple in epoch 1 joins it.
        let s = Tuple::new(Rel::S, 2, 4, 0);
        a.on_data(1, s, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(1, 2)]);
    }

    #[test]
    fn finalize_discards_wrong_bit_tuples() {
        let (mut a, _b, plan) = mid_migration_pair();
        let spec = plan.specs[0];
        let mut sink = Vec::new();
        let s_keep = Tuple::new(Rel::S, 1, 7, 0);
        let s_drop = Tuple::new(Rel::S, 2, 7, 1 << 63);
        a.on_data(0, s_keep, &mut collect_pairs(&mut sink));
        a.on_data(0, s_drop, &mut collect_pairs(&mut sink));
        a.on_signal(0, 1, spec, 2);
        // Old-epoch S arrivals during migration, one of each class.
        let s_keep2 = Tuple::new(Rel::S, 3, 7, 1); // bit 0
        let s_drop2 = Tuple::new(Rel::S, 4, 7, (1 << 63) | 1); // bit 1
        a.on_data(0, s_keep2, &mut collect_pairs(&mut sink));
        a.on_data(0, s_drop2, &mut collect_pairs(&mut sink));
        a.on_signal(1, 1, spec, 2);
        a.on_partner_done();
        let summary = a.finalize();
        assert_eq!(summary.discarded, 2);
        assert_eq!(summary.merged, 1); // s_keep2 from Δ
        assert_eq!(a.stored_tuples(), 2); // s_keep + s_keep2
    }

    #[test]
    #[should_panic(expected = "old-epoch tuple after all reshuffler signals")]
    fn old_epoch_after_all_signals_is_a_protocol_violation() {
        let (mut a, _b, plan) = mid_migration_pair();
        a.on_signal(0, 1, plan.specs[0], 2);
        a.on_signal(1, 1, plan.specs[0], 2);
        let mut sink = |_: &Tuple, _: &Tuple| {};
        a.on_data(0, Tuple::new(Rel::R, 1, 1, 0), &mut sink);
    }

    #[test]
    #[should_panic(expected = "duplicate signal")]
    fn duplicate_signals_panic() {
        let (mut a, _b, plan) = mid_migration_pair();
        a.on_signal(0, 1, plan.specs[0], 2);
        a.on_signal(0, 1, plan.specs[0], 2);
    }

    fn expand_spec_1x1() -> ExpandSpec {
        use crate::mapping::GridPos;
        ExpandSpec {
            machine: 0,
            old_pos: GridPos { row: 0, col: 0 },
            children: [1, 2, 3],
            n_before: 1,
            m_before: 1,
        }
    }

    #[test]
    fn expansion_parent_splits_keeps_and_forwards() {
        let mut p = make_joiner(2);
        let mut pairs = Vec::new();
        // τ: an R tuple with row-bit 0 (kept, copied to child (0,1)) and an
        // S tuple with col-bit 1 (leaves for children (0,1) and (1,1)).
        let r_keep = Tuple::new(Rel::R, 1, 7, 0);
        let s_move = Tuple::new(Rel::S, 2, 7, 1 << 63);
        p.on_data(0, r_keep, &mut collect_pairs(&mut pairs));
        p.on_data(0, s_move, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(1, 2)]);
        let spec = expand_spec_1x1();
        let so = p.on_expand_signal(0, 1, spec, 2);
        assert!(so.start_migration && !so.all_signals);
        assert_eq!(p.expansion_snapshot().len(), 2, "both relations ship");
        // Old-epoch R with row-bit 1: joins τ∪Δ, forwarded to two children,
        // not kept here.
        let r_old = Tuple::new(Rel::R, 3, 7, 1 << 63);
        let o = p.on_data(0, r_old, &mut collect_pairs(&mut pairs));
        let d = o.expand_forward.expect("Δ tuples fan out to children");
        assert!(!d.keep);
        assert_eq!(d.sends(), 2);
        assert_eq!(pairs, vec![(1, 2), (3, 2)]);
        // New-epoch S with col-bit 0 (parent's own new cell): joins
        // Keep(τ∪Δ) = {r_keep} only.
        let s_new = Tuple::new(Rel::S, 4, 7, 0);
        p.on_data(1, s_new, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(1, 2), (3, 2), (1, 4)]);
        let so = p.on_expand_signal(1, 1, spec, 2);
        assert!(so.all_signals);
        // Parents await no partner state: ready right after the signals.
        assert!(p.ready_to_finalize());
        let summary = p.finalize();
        assert_eq!(summary.discarded, 2, "s_move from τ and r_old from Δ");
        assert_eq!(summary.merged, 1, "s_new from Δ′");
        assert_eq!(p.epoch(), 1);
        assert_eq!(p.stored_tuples(), 2); // r_keep + s_new
    }

    #[test]
    fn expansion_child_is_born_with_parent_state() {
        let mut c = EpochJoiner::new_dormant(&|| Box::new(VecIndex::new(Predicate::Equi)), 2);
        assert!(!c.is_born());
        let mut pairs = Vec::new();
        // New-epoch data can arrive before any parent state.
        let s_new = Tuple::new(Rel::S, 1, 5, 0);
        c.on_data(3, s_new, &mut collect_pairs(&mut pairs));
        assert!(pairs.is_empty());
        // Parent state arrives: probes Δ′.
        let r_mu = Tuple::new(Rel::R, 2, 5, 0);
        c.on_migration_tuple(r_mu, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(2, 1)]);
        assert!(!c.ready_to_finalize());
        c.on_parent_done(3);
        assert!(c.ready_to_finalize());
        let summary = c.finalize();
        assert_eq!(summary.merged, 2);
        assert_eq!(summary.discarded, 0);
        assert!(c.is_born());
        assert_eq!(c.epoch(), 3);
        // Born: a stable joiner at the expansion epoch.
        let s2 = Tuple::new(Rel::S, 3, 5, 0);
        c.on_data(3, s2, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(2, 1), (2, 3)]);
    }

    #[test]
    fn expansion_child_with_no_contact_but_done_marker_is_born_empty() {
        let mut c = EpochJoiner::new_dormant(&|| Box::new(VecIndex::new(Predicate::Equi)), 1);
        c.on_parent_done(7);
        assert!(c.ready_to_finalize());
        let summary = c.finalize();
        assert_eq!(summary, FinalizeSummary::default());
        assert_eq!(c.epoch(), 7);
        assert!(c.is_born());
    }

    #[test]
    #[should_panic(expected = "unborn child saw data from two epochs")]
    fn unborn_child_rejects_mixed_epoch_data() {
        let mut c = EpochJoiner::new_dormant(&|| Box::new(VecIndex::new(Predicate::Equi)), 1);
        let mut sink = |_: &Tuple, _: &Tuple| {};
        c.on_data(3, Tuple::new(Rel::R, 1, 1, 0), &mut sink);
        c.on_data(4, Tuple::new(Rel::R, 2, 1, 0), &mut sink);
    }

    #[test]
    fn contraction_survivor_merges_and_awaits_three_markers() {
        let mut s = make_joiner(2);
        let mut pairs = Vec::new();
        // Pre-contraction state: one R tuple in τ.
        let r_old = Tuple::new(Rel::R, 1, 5, 0);
        s.on_data(0, r_old, &mut collect_pairs(&mut pairs));
        // One retiree's state arrives before any signal (it heard first).
        let s_mu = Tuple::new(Rel::S, 2, 5, u64::MAX);
        s.on_migration_tuple(s_mu, &mut collect_pairs(&mut pairs));
        s.on_partner_done();
        let so = s.on_contract_signal(0, 1, ContractRole::Survive, 2);
        assert!(so.start_migration && !so.all_signals);
        assert!(s.is_merging());
        // Old-epoch data still joins τ∪Δ — and Δ′ too, since a survivor
        // keeps everything.
        let s_old = Tuple::new(Rel::S, 3, 5, 0);
        let o = s.on_data(0, s_old, &mut collect_pairs(&mut pairs));
        assert!(!o.forward_to_partner, "survivors forward nothing");
        // New-epoch data joins µ ∪ Δ′ and Keep(τ∪Δ) = all of τ∪Δ.
        let r_new = Tuple::new(Rel::R, 4, 5, 0);
        s.on_data(1, r_new, &mut collect_pairs(&mut pairs));
        let so = s.on_contract_signal(1, 1, ContractRole::Survive, 2);
        assert!(so.all_signals);
        assert!(!s.ready_to_finalize(), "two retiree markers still missing");
        s.on_partner_done();
        assert!(!s.ready_to_finalize());
        s.on_partner_done();
        assert!(s.ready_to_finalize());
        let summary = s.finalize();
        assert_eq!(summary.discarded, 0, "survivors keep everything");
        assert_eq!(summary.merged, 3, "s_old (Δ), s_mu (µ), r_new (Δ′)");
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.stored_tuples(), 4);
        // (1,3): r_old ⋈ s_old; (4,2): r_new ⋈ µ; (4,3): r_new ⋈ Keep(Δ).
        // Note (1,2) is absent: µ probes only Δ′ — the r_old ⋈ s_mu pair
        // is the retiree's to emit (r_old's replica lives there too).
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 3), (4, 2), (4, 3)]);
    }

    #[test]
    fn contraction_retiree_forwards_ships_and_goes_dormant() {
        let mut r = make_joiner(2);
        let mut pairs = Vec::new();
        // τ: one tuple of each relation; this retiree forwards only S.
        let r_old = Tuple::new(Rel::R, 1, 7, 0);
        let s_old = Tuple::new(Rel::S, 2, 7, 0);
        r.on_data(0, r_old, &mut collect_pairs(&mut pairs));
        r.on_data(0, s_old, &mut collect_pairs(&mut pairs));
        assert_eq!(pairs, vec![(1, 2)]);
        let role = ContractRole::Retire {
            survivor: 0,
            forward_rel: Some(Rel::S),
        };
        let so = r.on_contract_signal(0, 1, role, 2);
        assert!(so.start_migration);
        assert!(r.is_retiring());
        let snap = r.migration_snapshot();
        assert_eq!(snap.len(), 1, "only the forward relation ships");
        assert_eq!(snap[0].rel, Rel::S);
        // Old-epoch Δ arrivals keep joining τ∪Δ; only S is forwarded.
        let s_delta = Tuple::new(Rel::S, 3, 7, 1);
        let o = r.on_data(0, s_delta, &mut collect_pairs(&mut pairs));
        assert!(o.forward_to_partner, "Δ tuple of the forward relation");
        let r_delta = Tuple::new(Rel::R, 4, 7, 1);
        let o = r.on_data(0, r_delta, &mut collect_pairs(&mut pairs));
        assert!(!o.forward_to_partner, "the other relation stays");
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 2), (1, 3), (4, 2), (4, 3)]);
        let so = r.on_contract_signal(1, 1, role, 2);
        assert!(so.all_signals);
        assert!(r.ready_to_finalize(), "retirees await no markers");
        let summary = r.finalize();
        assert_eq!(summary.merged, 0);
        assert_eq!(summary.discarded, 4, "everything is dropped locally");
        assert_eq!(r.stored_tuples(), 0);
        assert!(!r.is_born(), "retiree is dormant again");
        assert_eq!(r.epoch(), 1, "the ack carries the contraction epoch");
        // Rebirth through the ordinary expansion-child path.
        let s_new = Tuple::new(Rel::S, 5, 9, 0);
        r.on_data(4, s_new, &mut collect_pairs(&mut pairs));
        r.on_parent_done(4);
        r.finalize();
        assert!(r.is_born());
        assert_eq!(r.epoch(), 4);
        assert_eq!(r.stored_tuples(), 1);
    }

    #[test]
    fn diagonal_retiree_ships_nothing() {
        let mut r = make_joiner(2);
        let mut sink = |_: &Tuple, _: &Tuple| {};
        r.on_data(0, Tuple::new(Rel::R, 1, 1, 0), &mut sink);
        r.on_data(0, Tuple::new(Rel::S, 2, 1, 0), &mut sink);
        let role = ContractRole::Retire {
            survivor: 0,
            forward_rel: None,
        };
        r.on_contract_signal(0, 1, role, 2);
        assert!(r.migration_snapshot().is_empty());
        let o = r.on_data(0, Tuple::new(Rel::S, 3, 1, 1), &mut sink);
        assert!(!o.forward_to_partner);
        r.on_contract_signal(1, 1, role, 2);
        assert!(r.ready_to_finalize());
        r.finalize();
        assert!(!r.is_born());
    }

    #[test]
    #[should_panic(expected = "retiring joiner received new-epoch data")]
    fn retiree_rejects_new_epoch_data() {
        let mut r = make_joiner(2);
        let mut sink = |_: &Tuple, _: &Tuple| {};
        r.on_contract_signal(
            0,
            1,
            ContractRole::Retire {
                survivor: 0,
                forward_rel: Some(Rel::R),
            },
            2,
        );
        r.on_data(1, Tuple::new(Rel::R, 1, 1, 0), &mut sink);
    }

    #[test]
    fn snapshot_contains_only_exchange_relation() {
        let (mut a, _b, plan) = mid_migration_pair();
        let mut sink = |_: &Tuple, _: &Tuple| {};
        let mut gen = TicketGen::new(3);
        for i in 0..10 {
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            a.on_data(0, Tuple::new(rel, i, i as i64, gen.next()), &mut sink);
        }
        a.on_signal(0, 1, plan.specs[0], 2);
        let snap = a.migration_snapshot();
        assert_eq!(snap.len(), 5);
        assert!(snap.iter().all(|t| t.rel == Rel::R));
        // Snapshot does not remove: τ still holds everything.
        assert_eq!(a.set_sizes()[0], 10);
    }
}
