//! Online ILF competitiveness tracking — the instrumentation behind
//! Fig. 8c, which plots `ILF/ILF*` against tuples processed and verifies it
//! never exceeds the proven bound.

use crate::ilf::{ilf, optimal_ilf};
use crate::mapping::Mapping;

/// One sample of the tracker.
#[derive(Clone, Copy, Debug)]
pub struct RatioSample {
    /// Tuples processed when the sample was taken.
    pub tuples: u64,
    /// True `|R|` at that instant.
    pub r: u64,
    /// True `|S|` at that instant.
    pub s: u64,
    /// ILF of the mapping the operator was actually running.
    pub ilf_actual: f64,
    /// ILF of the oracle-optimal mapping for the true cardinalities.
    pub ilf_optimal: f64,
    /// Was a migration in flight?
    pub migrating: bool,
}

impl RatioSample {
    /// `ILF / ILF*` (1.0 when optimal).
    pub fn ratio(&self) -> f64 {
        if self.ilf_optimal == 0.0 {
            1.0
        } else {
            self.ilf_actual / self.ilf_optimal
        }
    }
}

/// Records `ILF/ILF*` over the lifetime of a run, against an oracle that
/// knows the true cardinalities (the comparison of §5.4).
#[derive(Clone, Debug)]
pub struct CompetitiveTracker {
    j: u32,
    samples: Vec<RatioSample>,
    /// Ignore samples before this many tuples (the operator's warm-up; the
    /// bound only applies once adaptation is enabled, §5.4).
    warmup_tuples: u64,
}

impl CompetitiveTracker {
    /// Track a `j`-joiner operator, ignoring the first `warmup_tuples`.
    pub fn new(j: u32, warmup_tuples: u64) -> CompetitiveTracker {
        CompetitiveTracker {
            j,
            samples: Vec::new(),
            warmup_tuples,
        }
    }

    /// Record the operator state after processing `tuples` tuples in total,
    /// with true cardinalities `(r, s)`, running `current`.
    pub fn record(&mut self, tuples: u64, r: u64, s: u64, current: Mapping, migrating: bool) {
        if r == 0 && s == 0 {
            return;
        }
        self.samples.push(RatioSample {
            tuples,
            r,
            s,
            ilf_actual: ilf(r, s, current),
            ilf_optimal: optimal_ilf(self.j, r, s),
            migrating,
        });
    }

    /// All samples.
    pub fn samples(&self) -> &[RatioSample] {
        &self.samples
    }

    /// Worst ratio observed after warm-up.
    pub fn max_ratio(&self) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.tuples >= self.warmup_tuples)
            .map(|s| s.ratio())
            .fold(1.0, f64::max)
    }

    /// Worst ratio over samples where the cardinality ratio respects the
    /// theorem's `|R|/|S| ≤ J` assumption (outside it, the §4.2.2 padding
    /// bound of 1.875 applies instead).
    pub fn max_ratio_within_assumptions(&self) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.tuples >= self.warmup_tuples)
            .filter(|s| {
                let (lo, hi) = (s.r.min(s.s), s.r.max(s.s));
                lo > 0 && hi <= lo * self.j as u64
            })
            .map(|s| s.ratio())
            .fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_mapping_has_ratio_one() {
        let mut t = CompetitiveTracker::new(16, 0);
        t.record(100, 50, 50, Mapping::new(4, 4), false);
        assert!((t.max_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stale_mapping_shows_elevated_ratio() {
        let mut t = CompetitiveTracker::new(16, 0);
        // R:S = 16:1 but still running square: ILF = 16/4 + 1/4 = 4.25
        // vs optimal (16,1): 16/16 + 1/1 = 2. Ratio = 2.125.
        t.record(17, 16, 1, Mapping::new(4, 4), false);
        assert!((t.max_ratio() - 2.125).abs() < 1e-9);
    }

    #[test]
    fn warmup_samples_are_ignored() {
        let mut t = CompetitiveTracker::new(16, 1000);
        t.record(10, 16, 1, Mapping::new(4, 4), false); // terrible, but warm-up
        t.record(2000, 50, 50, Mapping::new(4, 4), false);
        assert!((t.max_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assumption_filter_drops_extreme_ratios() {
        let mut t = CompetitiveTracker::new(4, 0);
        // Ratio 100:1 > J=4: excluded from the within-assumptions max.
        t.record(101, 100, 1, Mapping::new(2, 2), false);
        t.record(200, 100, 100, Mapping::new(2, 2), false);
        assert!(t.max_ratio() > 1.0);
        assert!((t.max_ratio_within_assumptions() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_state_is_skipped() {
        let mut t = CompetitiveTracker::new(4, 0);
        t.record(0, 0, 0, Mapping::new(2, 2), false);
        assert!(t.samples().is_empty());
    }
}
