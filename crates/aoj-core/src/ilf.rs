//! The input-load factor (§3.3) and optimal mapping search.
//!
//! Under an `(n, m)`-mapping every joiner receives (and stores)
//! `|R|/n + |S|/m` tuples — the **ILF**, the only cost that depends on the
//! mapping (join work and output size are mapping-independent, both being
//! proportional to the region area `|R||S|/J`). Minimising the ILF
//! simultaneously minimises per-machine input overhead, per-machine
//! storage, and global replicated traffic `J · ILF`.
//!
//! All comparisons here use exact integer arithmetic: for fixed `J`,
//! `|R|/n + |S|/m = (|R|·m + |S|·n) / J`, so mappings compare by the
//! numerator `|R|·m + |S|·n` in `u128`.

use crate::mapping::Mapping;

/// ILF numerator `r·m + s·n` — proportional to the ILF for fixed `J`.
/// Cardinalities are in abstract units (tuples, or bytes when sides have
/// different tuple sizes; §4.2.2 "relative tuple sizes").
#[inline]
pub fn ilf_numerator(r: u64, s: u64, mapping: Mapping) -> u128 {
    r as u128 * mapping.m as u128 + s as u128 * mapping.n as u128
}

/// The ILF itself, `r/n + s/m`, as a float for reporting.
#[inline]
pub fn ilf(r: u64, s: u64, mapping: Mapping) -> f64 {
    r as f64 / mapping.n as f64 + s as f64 / mapping.m as f64
}

/// All mappings for `j` joiners (`j` a power of two): `(2^k, j/2^k)`.
pub fn all_mappings(j: u32) -> impl Iterator<Item = Mapping> {
    assert!(j.is_power_of_two(), "J must be a power of two");
    let e = j.trailing_zeros();
    (0..=e).map(move |k| Mapping::new(1 << k, 1 << (e - k)))
}

/// The mapping minimising the ILF for cardinalities `(r, s)` over `j`
/// joiners. Deterministic tie-break: the smallest `n` wins (ties only occur
/// at exact power-of-two cardinality ratios).
pub fn optimal_mapping(j: u32, r: u64, s: u64) -> Mapping {
    all_mappings(j)
        .min_by_key(|&mp| (ilf_numerator(r, s, mp), mp.n))
        .expect("at least one mapping exists")
}

/// The optimal ILF value (float, for reporting and ratio tracking).
pub fn optimal_ilf(j: u32, r: u64, s: u64) -> f64 {
    ilf(r, s, optimal_mapping(j, r, s))
}

/// The continuous lower bound on the region semi-perimeter,
/// `2·sqrt(r·s/J)` (Theorem 3.1/3.2). Real mappings are integral, so the
/// achievable optimum can exceed this by up to the 1.07 factor of
/// Theorem 3.2.
pub fn continuous_lower_bound(j: u32, r: u64, s: u64) -> f64 {
    2.0 * ((r as f64 * s as f64) / j as f64).sqrt()
}

/// Padded cardinalities (§4.2.2 "Relation cardinality ratio"): if the
/// larger relation exceeds `J ×` the smaller, the smaller is padded with
/// dummy tuples up to `larger / J`, keeping the ratio within `J` so that
/// Lemma 4.1 (and everything built on it) applies. Padding multiplies the
/// handled volume by at most `1 + 1/J`.
pub fn effective_cardinalities(j: u32, r: u64, s: u64) -> (u64, u64) {
    let j = j as u64;
    let r_eff = r.max(s.div_ceil(j));
    let s_eff = s.max(r.div_ceil(j));
    (r_eff.max(1), s_eff.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_example() {
        // Fig. 2: R = 1 GB, S = 64 GB, J = 64 machines.
        // (8,8) gives 8.125 GB; (1,64) gives 2 GB and is optimal.
        let (r, s) = (1u64 << 30, 64u64 << 30);
        let mid = Mapping::new(8, 8);
        let opt = optimal_mapping(64, r, s);
        assert_eq!(opt, Mapping::new(1, 64));
        let gb = (1u64 << 30) as f64;
        assert!((ilf(r, s, mid) / gb - 8.125).abs() < 1e-9);
        assert!((ilf(r, s, opt) / gb - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_streams_prefer_square() {
        let opt = optimal_mapping(64, 1000, 1000);
        assert_eq!(opt, Mapping::new(8, 8));
    }

    #[test]
    fn all_mappings_enumerates_spectrum() {
        let maps: Vec<Mapping> = all_mappings(16).collect();
        assert_eq!(maps.len(), 5);
        assert_eq!(maps[0], Mapping::new(1, 16));
        assert_eq!(maps[4], Mapping::new(16, 1));
    }

    #[test]
    fn numerator_orders_like_float_ilf() {
        let (r, s) = (123_456u64, 7_890u64);
        let mut maps: Vec<Mapping> = all_mappings(32).collect();
        maps.sort_by_key(|&mp| ilf_numerator(r, s, mp));
        for w in maps.windows(2) {
            assert!(ilf(r, s, w[0]) <= ilf(r, s, w[1]) + 1e-9);
        }
    }

    #[test]
    fn lemma_4_1_holds_at_the_optimum() {
        // Under the optimal mapping with ratio within J:
        // (1/2)(s/m) <= r/n <= 2(s/m).
        let j = 64u32;
        for (r, s) in [
            (1000u64, 1000u64),
            (100, 6000),
            (6000, 100),
            (40, 2500),
            (999, 1001),
        ] {
            if r.max(s) > r.min(s) * j as u64 {
                continue;
            }
            let mp = optimal_mapping(j, r, s);
            let rn = r as f64 / mp.n as f64;
            let sm = s as f64 / mp.m as f64;
            assert!(rn <= 2.0 * sm + 1e-9, "r/n={rn} s/m={sm} for ({r},{s})");
            assert!(sm <= 2.0 * rn + 1e-9, "r/n={rn} s/m={sm} for ({r},{s})");
        }
    }

    #[test]
    fn theorem_3_2_semi_perimeter_within_1_07_of_continuous_optimum() {
        // Grid layout: semi-perimeter <= 1.07 * 2 sqrt(RS/J) when the
        // cardinality ratio is within J; exactly optimal otherwise.
        let j = 64u32;
        let mut worst: f64 = 0.0;
        for r in [1u64, 3, 10, 64, 100, 1_000, 12_345, 1 << 20] {
            for s in [1u64, 7, 50, 640, 10_000, 54_321, 1 << 22] {
                let ratio = r.max(s) as f64 / r.min(s) as f64;
                if ratio >= j as f64 {
                    continue;
                }
                let opt = optimal_ilf(j, r, s);
                let bound = continuous_lower_bound(j, r, s);
                worst = worst.max(opt / bound);
            }
        }
        assert!(worst <= 1.07, "worst semi-perimeter ratio {worst}");
        // The bound is tight-ish: some instance should exceed 1.05.
        let tight = optimal_ilf(j, 1000, 2000) / continuous_lower_bound(j, 1000, 2000);
        assert!(
            tight > 1.02,
            "expected near-worst-case instance, got {tight}"
        );
    }

    #[test]
    fn extreme_ratio_clamps_to_edge_mapping() {
        let opt = optimal_mapping(16, 1_000_000, 1);
        assert_eq!(opt, Mapping::new(16, 1));
        let opt = optimal_mapping(16, 1, 1_000_000);
        assert_eq!(opt, Mapping::new(1, 16));
    }

    #[test]
    fn effective_cardinalities_pad_to_ratio_j() {
        let (r, s) = effective_cardinalities(16, 3_200, 1);
        assert_eq!(r, 3_200);
        assert_eq!(s, 200); // padded up to r/J
        let (r, s) = effective_cardinalities(16, 100, 200);
        assert_eq!((r, s), (100, 200)); // within ratio: unchanged
        let (r, s) = effective_cardinalities(8, 0, 0);
        assert_eq!((r, s), (1, 1)); // never zero
    }

    #[test]
    fn padding_overhead_is_bounded() {
        // Total padded volume <= (1 + 1/J) * total.
        for (r, s) in [(1u64 << 30, 5u64), (77, 1 << 22)] {
            let j = 32u32;
            let (re, se) = effective_cardinalities(j, r, s);
            let total = (r + s) as f64;
            let padded = (re + se) as f64;
            assert!(padded <= total * (1.0 + 1.0 / j as f64) + 2.0);
        }
    }
}
