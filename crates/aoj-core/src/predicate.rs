//! Join predicates.
//!
//! The join-matrix model evaluates *arbitrary* predicates (§3.1): the
//! operator's routing never inspects them, so any `θ(r, s)` works. The
//! enum below covers the paper's workloads — equi-joins (EQ5, EQ7,
//! Fluct-Join), band joins (BCI, BNCI) — plus the inequality join of
//! Fig. 1a and a general closure escape hatch.

use std::fmt;
use std::sync::Arc;

use crate::tuple::{Rel, Tuple};

/// A join predicate `θ(r, s)` evaluated over the join keys (and, for
/// [`Predicate::Theta`], whole tuples) of an `R` tuple and an `S` tuple.
#[derive(Clone)]
pub enum Predicate {
    /// `r.key = s.key` — equi-join.
    Equi,
    /// `|r.key − s.key| ≤ width` — band join (BCI uses width 1 on
    /// `shipdate`, BNCI width 1 on `orderkey`).
    Band {
        /// Half-width of the band, inclusive.
        width: i64,
    },
    /// `r.key ≠ s.key` — the inequality predicate of Fig. 1a.
    NotEqual,
    /// `r.key < s.key`.
    LessThan,
    /// Always true — the full cross product (the worst case every mapping
    /// must still cover).
    CrossProduct,
    /// An arbitrary theta predicate over both tuples.
    #[allow(clippy::type_complexity)]
    Theta(Arc<dyn Fn(&Tuple, &Tuple) -> bool + Send + Sync>),
}

impl Predicate {
    /// Evaluate the predicate. `r` must come from stream R and `s` from S;
    /// callers mixing sides get a debug assertion.
    #[inline]
    pub fn matches(&self, r: &Tuple, s: &Tuple) -> bool {
        debug_assert_eq!(r.rel, Rel::R);
        debug_assert_eq!(s.rel, Rel::S);
        match self {
            Predicate::Equi => r.key == s.key,
            Predicate::Band { width } => (r.key - s.key).abs() <= *width,
            Predicate::NotEqual => r.key != s.key,
            Predicate::LessThan => r.key < s.key,
            Predicate::CrossProduct => true,
            Predicate::Theta(f) => f(r, s),
        }
    }

    /// Evaluate against a stored tuple regardless of which side is which.
    #[inline]
    pub fn matches_pair(&self, a: &Tuple, b: &Tuple) -> bool {
        match (a.rel, b.rel) {
            (Rel::R, Rel::S) => self.matches(a, b),
            (Rel::S, Rel::R) => self.matches(b, a),
            _ => false, // same-relation pairs never join
        }
    }

    /// True if an index on the join key can serve this predicate with a
    /// point lookup (equi) or a range scan (band, inequality); false means
    /// a nested-loop scan is required.
    pub fn is_index_friendly(&self) -> bool {
        !matches!(self, Predicate::Theta(_) | Predicate::CrossProduct)
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Equi => write!(f, "Equi"),
            Predicate::Band { width } => write!(f, "Band(±{width})"),
            Predicate::NotEqual => write!(f, "NotEqual"),
            Predicate::LessThan => write!(f, "LessThan"),
            Predicate::CrossProduct => write!(f, "CrossProduct"),
            Predicate::Theta(_) => write!(f, "Theta(<closure>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(key: i64) -> Tuple {
        Tuple::new(Rel::R, 0, key, 0)
    }
    fn s(key: i64) -> Tuple {
        Tuple::new(Rel::S, 1, key, 0)
    }

    #[test]
    fn equi() {
        assert!(Predicate::Equi.matches(&r(5), &s(5)));
        assert!(!Predicate::Equi.matches(&r(5), &s(6)));
    }

    #[test]
    fn band_is_inclusive_and_symmetric() {
        let p = Predicate::Band { width: 1 };
        assert!(p.matches(&r(10), &s(11)));
        assert!(p.matches(&r(11), &s(10)));
        assert!(p.matches(&r(10), &s(10)));
        assert!(!p.matches(&r(10), &s(12)));
    }

    #[test]
    fn not_equal_and_less_than() {
        assert!(Predicate::NotEqual.matches(&r(1), &s(2)));
        assert!(!Predicate::NotEqual.matches(&r(2), &s(2)));
        assert!(Predicate::LessThan.matches(&r(1), &s(2)));
        assert!(!Predicate::LessThan.matches(&r(2), &s(2)));
    }

    #[test]
    fn cross_product_accepts_everything() {
        assert!(Predicate::CrossProduct.matches(&r(i64::MIN), &s(i64::MAX)));
    }

    #[test]
    fn theta_closure_sees_aux() {
        let p = Predicate::Theta(Arc::new(|r: &Tuple, s: &Tuple| {
            r.key == s.key && r.aux > s.aux
        }));
        assert!(p.matches(&r(3).with_aux(9), &s(3).with_aux(1)));
        assert!(!p.matches(&r(3).with_aux(0), &s(3).with_aux(1)));
    }

    #[test]
    fn matches_pair_reorders_sides() {
        let p = Predicate::LessThan;
        assert!(p.matches_pair(&r(1), &s(2)));
        assert!(p.matches_pair(&s(2), &r(1)));
        assert!(!p.matches_pair(&r(1), &r(1).with_aux(1)));
    }

    #[test]
    fn index_friendliness() {
        assert!(Predicate::Equi.is_index_friendly());
        assert!(Predicate::Band { width: 3 }.is_index_friendly());
        assert!(!Predicate::CrossProduct.is_index_friendly());
    }
}
