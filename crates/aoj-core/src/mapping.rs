//! The grid-layout `(n,m)`-mapping scheme (§3.1, §3.4) and its evolution
//! under migrations.
//!
//! A join between streams R and S is a join-matrix; `J = n · m` joiners
//! each own one congruent rectangle: the joiner at grid position `(i, j)`
//! stores partition `Ri` and partition `Sj` and evaluates `Ri ⋈θ Sj`.
//! Every matrix cell is covered by exactly one joiner, so results are
//! complete and duplicate-free by construction.
//!
//! [`GridAssignment`] tracks which *physical machine* sits at which grid
//! position. Migrations relabel positions **locality-aware** (Fig. 3): when
//! `(n, m) → (n/2, 2m)`, machine `(i, j)` moves to `(i/2, 2j + (i mod 2))`,
//! so it keeps all its R state, exchanges R with a single partner, and
//! deterministically discards half its S state — the minimal-relocation
//! scheme of Lemma 4.4.

use crate::tuple::Rel;

/// An `(n, m)`-mapping: R is split into `n` row partitions and S into `m`
/// column partitions; `n · m = J`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mapping {
    /// Number of R partitions (rows).
    pub n: u32,
    /// Number of S partitions (columns).
    pub m: u32,
}

impl Mapping {
    /// Create a mapping. Both dimensions must be non-zero powers of two.
    pub fn new(n: u32, m: u32) -> Mapping {
        assert!(
            n.is_power_of_two() && m.is_power_of_two(),
            "(n,m) must be powers of two"
        );
        Mapping { n, m }
    }

    /// Total joiners `J = n · m`.
    #[inline]
    pub fn j(&self) -> u32 {
        self.n * self.m
    }

    /// The most square mapping for `j` joiners: `(2^⌊e/2⌋, 2^⌈e/2⌉)` where
    /// `j = 2^e`. This is the paper's **StaticMid** scheme `(√J, √J)`.
    pub fn square(j: u32) -> Mapping {
        assert!(j.is_power_of_two(), "J must be a power of two");
        let e = j.trailing_zeros();
        Mapping::new(1 << (e / 2), 1 << (e - e / 2))
    }

    /// `(n/2, 2m)` if `n ≥ 2`.
    pub fn halve_rows(&self) -> Option<Mapping> {
        (self.n >= 2).then(|| Mapping::new(self.n / 2, self.m * 2))
    }

    /// `(2n, m/2)` if `m ≥ 2`.
    pub fn halve_cols(&self) -> Option<Mapping> {
        (self.m >= 2).then(|| Mapping::new(self.n * 2, self.m / 2))
    }

    /// Partition count along `rel`'s axis: `n` for R, `m` for S.
    #[inline]
    pub fn parts(&self, rel: Rel) -> u32 {
        match rel {
            Rel::R => self.n,
            Rel::S => self.m,
        }
    }

    /// Replication factor of `rel`: how many joiners hold each partition
    /// (`m` for R, `n` for S).
    #[inline]
    pub fn replication(&self, rel: Rel) -> u32 {
        match rel {
            Rel::R => self.m,
            Rel::S => self.n,
        }
    }
}

/// A single adaptivity step. Lemma 4.2 proves the optimum never moves more
/// than one step per decision under Alg. 2 with ε = 1; larger jumps are
/// executed as chains of steps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// `(n, m) → (n/2, 2m)`: R partitions coarsen (pairwise exchange),
    /// S partitions refine (deterministic discard).
    HalveRows,
    /// `(n, m) → (2n, m/2)`: S coarsens, R refines.
    HalveCols,
}

impl Step {
    /// The relation whose partitions merge; its state is *exchanged*
    /// between partner joiners.
    pub fn coarsens(self) -> Rel {
        match self {
            Step::HalveRows => Rel::R,
            Step::HalveCols => Rel::S,
        }
    }

    /// The relation whose partitions split; each joiner *discards* the half
    /// that no longer belongs to it.
    pub fn refines(self) -> Rel {
        self.coarsens().other()
    }

    /// Apply to a mapping.
    pub fn apply(self, mapping: Mapping) -> Option<Mapping> {
        match self {
            Step::HalveRows => mapping.halve_rows(),
            Step::HalveCols => mapping.halve_cols(),
        }
    }
}

/// The chain of steps leading from `from` to `to` (same `J`). Empty if the
/// mappings are equal.
pub fn steps_between(from: Mapping, to: Mapping) -> Vec<Step> {
    assert_eq!(from.j(), to.j(), "steps_between requires equal J");
    let mut steps = Vec::new();
    let mut cur = from;
    while cur.n > to.n {
        steps.push(Step::HalveRows);
        cur = cur.halve_rows().expect("n > to.n >= 1");
    }
    while cur.m > to.m {
        steps.push(Step::HalveCols);
        cur = cur.halve_cols().expect("m > to.m >= 1");
    }
    debug_assert_eq!(cur, to);
    steps
}

/// A position in the grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GridPos {
    /// Row = R partition index owned.
    pub row: u32,
    /// Column = S partition index owned.
    pub col: u32,
}

/// Which physical machine sits at which grid position. Evolves under
/// migrations with the locality-aware relabelling of Fig. 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridAssignment {
    mapping: Mapping,
    /// machine index → grid position
    pos: Vec<GridPos>,
    /// row-major grid cell → machine index
    machine: Vec<u32>,
}

impl GridAssignment {
    /// The canonical initial assignment: machine `k` sits at
    /// `(k / m, k mod m)`.
    pub fn initial(mapping: Mapping) -> GridAssignment {
        let j = mapping.j() as usize;
        let mut pos = Vec::with_capacity(j);
        let mut machine = vec![0u32; j];
        for k in 0..j as u32 {
            let p = GridPos {
                row: k / mapping.m,
                col: k % mapping.m,
            };
            pos.push(p);
            machine[(p.row * mapping.m + p.col) as usize] = k;
        }
        GridAssignment {
            mapping,
            pos,
            machine,
        }
    }

    /// Current mapping.
    #[inline]
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    /// Number of machines.
    #[inline]
    pub fn j(&self) -> u32 {
        self.mapping.j()
    }

    /// Grid position of a machine.
    #[inline]
    pub fn pos_of(&self, machine: usize) -> GridPos {
        self.pos[machine]
    }

    /// Machine at a grid position.
    #[inline]
    pub fn machine_at(&self, row: u32, col: u32) -> usize {
        debug_assert!(row < self.mapping.n && col < self.mapping.m);
        self.machine[(row * self.mapping.m + col) as usize] as usize
    }

    /// Machines holding R partition `row` (the whole grid row).
    pub fn machines_for_row(&self, row: u32) -> impl Iterator<Item = usize> + '_ {
        (0..self.mapping.m).map(move |c| self.machine_at(row, c))
    }

    /// Machines holding S partition `col` (the whole grid column).
    pub fn machines_for_col(&self, col: u32) -> impl Iterator<Item = usize> + '_ {
        (0..self.mapping.n).map(move |r| self.machine_at(r, col))
    }

    /// New grid position of the machine currently at `p` after `step`.
    pub fn relabel(p: GridPos, step: Step) -> GridPos {
        match step {
            Step::HalveRows => GridPos {
                row: p.row >> 1,
                col: (p.col << 1) | (p.row & 1),
            },
            Step::HalveCols => GridPos {
                row: (p.row << 1) | (p.col & 1),
                col: p.col >> 1,
            },
        }
    }

    /// The exchange partner (Lemma 4.4) of the machine at `p`: the sibling
    /// that owns the other half of the merged partition.
    pub fn partner_pos(p: GridPos, step: Step) -> GridPos {
        match step {
            Step::HalveRows => GridPos {
                row: p.row ^ 1,
                col: p.col,
            },
            Step::HalveCols => GridPos {
                row: p.row,
                col: p.col ^ 1,
            },
        }
    }

    /// Apply a migration step, relabelling every machine in place.
    pub fn apply_step(&mut self, step: Step) {
        let new_mapping = step
            .apply(self.mapping)
            .expect("mapping cannot shrink below 1");
        let mut machine = vec![0u32; new_mapping.j() as usize];
        for (k, p) in self.pos.iter_mut().enumerate() {
            let np = Self::relabel(*p, step);
            *p = np;
            machine[(np.row * new_mapping.m + np.col) as usize] = k as u32;
        }
        self.mapping = new_mapping;
        self.machine = machine;
    }

    /// Apply an elastic ×4 expansion (§"Elasticity", Fig. 5): the mapping
    /// becomes `(2n, 2m)`; the machine previously at `(i, j)` stays at
    /// `(2i, 2j)` and three fresh machines fill the other three children.
    /// Fresh machine indices are allocated from `old_j ..` in a fixed
    /// deterministic order: for old machine `k`, children `(a, b) ≠ (0, 0)`
    /// get indices `old_j + 3k`, `old_j + 3k + 1`, `old_j + 3k + 2` for
    /// `(0,1)`, `(1,0)`, `(1,1)` respectively.
    pub fn apply_expansion(&mut self) {
        let old_j = self.j() as usize;
        let new_mapping = Mapping::new(self.mapping.n * 2, self.mapping.m * 2);
        let mut pos = self.pos.clone();
        pos.resize(old_j * 4, GridPos { row: 0, col: 0 });
        let mut machine = vec![0u32; new_mapping.j() as usize];
        for k in 0..old_j {
            let p = self.pos[k];
            let children = [
                (
                    k,
                    GridPos {
                        row: 2 * p.row,
                        col: 2 * p.col,
                    },
                ),
                (
                    old_j + 3 * k,
                    GridPos {
                        row: 2 * p.row,
                        col: 2 * p.col + 1,
                    },
                ),
                (
                    old_j + 3 * k + 1,
                    GridPos {
                        row: 2 * p.row + 1,
                        col: 2 * p.col,
                    },
                ),
                (
                    old_j + 3 * k + 2,
                    GridPos {
                        row: 2 * p.row + 1,
                        col: 2 * p.col + 1,
                    },
                ),
            ];
            for (idx, cp) in children {
                pos[idx] = cp;
                machine[(cp.row * new_mapping.m + cp.col) as usize] = idx as u32;
            }
        }
        self.mapping = new_mapping;
        self.pos = pos;
        self.machine = machine;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_mapping() {
        assert_eq!(Mapping::square(16), Mapping::new(4, 4));
        assert_eq!(Mapping::square(64), Mapping::new(8, 8));
        assert_eq!(Mapping::square(32), Mapping::new(4, 8));
        assert_eq!(Mapping::square(1), Mapping::new(1, 1));
    }

    #[test]
    fn halving_bounds() {
        let m = Mapping::new(1, 8);
        assert!(m.halve_rows().is_none());
        assert_eq!(m.halve_cols(), Some(Mapping::new(2, 4)));
    }

    #[test]
    fn parts_and_replication() {
        let m = Mapping::new(2, 8);
        assert_eq!(m.parts(Rel::R), 2);
        assert_eq!(m.parts(Rel::S), 8);
        assert_eq!(m.replication(Rel::R), 8);
        assert_eq!(m.replication(Rel::S), 2);
        assert_eq!(m.j(), 16);
    }

    #[test]
    fn steps_between_chains() {
        let from = Mapping::new(8, 2);
        let to = Mapping::new(1, 16);
        let steps = steps_between(from, to);
        assert_eq!(steps, vec![Step::HalveRows; 3]);
        let mut cur = from;
        for s in steps {
            cur = s.apply(cur).unwrap();
        }
        assert_eq!(cur, to);

        assert!(steps_between(from, from).is_empty());
        assert_eq!(
            steps_between(Mapping::new(2, 8), Mapping::new(8, 2)),
            vec![Step::HalveCols; 2]
        );
    }

    #[test]
    fn initial_assignment_is_row_major_bijection() {
        let a = GridAssignment::initial(Mapping::new(4, 4));
        for k in 0..16 {
            let p = a.pos_of(k);
            assert_eq!(a.machine_at(p.row, p.col), k);
        }
        assert_eq!(a.pos_of(5), GridPos { row: 1, col: 1 });
    }

    #[test]
    fn relabel_matches_fig3() {
        // Fig. 3 migrates (8,2) -> (4,4). Machine at (i, j) moves to
        // (i/2, 2j + i%2); partners are (i^1, j).
        let p = GridPos { row: 5, col: 1 };
        let np = GridAssignment::relabel(p, Step::HalveRows);
        assert_eq!(np, GridPos { row: 2, col: 3 });
        let partner = GridAssignment::partner_pos(p, Step::HalveRows);
        assert_eq!(partner, GridPos { row: 4, col: 1 });
        // Partner lands on the sibling column of the same new row.
        let npp = GridAssignment::relabel(partner, Step::HalveRows);
        assert_eq!(npp, GridPos { row: 2, col: 2 });
    }

    #[test]
    fn apply_step_remains_bijective() {
        let mut a = GridAssignment::initial(Mapping::new(8, 2));
        a.apply_step(Step::HalveRows);
        assert_eq!(a.mapping(), Mapping::new(4, 4));
        let mut seen = [false; 16];
        for r in 0..4 {
            for c in 0..4 {
                let k = a.machine_at(r, c);
                assert!(!seen[k], "machine {k} appears twice");
                seen[k] = true;
                assert_eq!(a.pos_of(k), GridPos { row: r, col: c });
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn partners_merge_to_same_row() {
        let a = GridAssignment::initial(Mapping::new(8, 2));
        for k in 0..16 {
            let p = a.pos_of(k);
            let partner = GridAssignment::partner_pos(p, Step::HalveRows);
            let np = GridAssignment::relabel(p, Step::HalveRows);
            let npp = GridAssignment::relabel(partner, Step::HalveRows);
            assert_eq!(np.row, npp.row, "partners must share the merged row");
            assert_ne!(np.col, npp.col, "partners must own complementary cols");
        }
    }

    #[test]
    fn long_step_chains_stay_bijective() {
        let mut a = GridAssignment::initial(Mapping::new(8, 8));
        for step in [
            Step::HalveRows,
            Step::HalveRows,
            Step::HalveCols,
            Step::HalveCols,
            Step::HalveCols,
            Step::HalveRows,
        ] {
            a.apply_step(step);
            let mp = a.mapping();
            let mut seen = vec![false; mp.j() as usize];
            for r in 0..mp.n {
                for c in 0..mp.m {
                    let k = a.machine_at(r, c);
                    assert!(!seen[k]);
                    seen[k] = true;
                }
            }
        }
        // (8,8) →HR (4,16) →HR (2,32) →HC (4,16) →HC (8,8) →HC (16,4)
        // →HR (8,8).
        assert_eq!(a.mapping(), Mapping::new(8, 8));
    }

    #[test]
    fn expansion_quadruples_grid() {
        let mut a = GridAssignment::initial(Mapping::new(2, 2));
        a.apply_expansion();
        assert_eq!(a.mapping(), Mapping::new(4, 4));
        // Old machine 0 was at (0,0); it stays at (0,0) and its children
        // occupy (0,1), (1,0), (1,1) with indices 4,5,6.
        assert_eq!(a.machine_at(0, 0), 0);
        assert_eq!(a.machine_at(0, 1), 4);
        assert_eq!(a.machine_at(1, 0), 5);
        assert_eq!(a.machine_at(1, 1), 6);
        // Bijectivity.
        let mut seen = [false; 16];
        for r in 0..4 {
            for c in 0..4 {
                let k = a.machine_at(r, c);
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
    }

    #[test]
    fn row_and_col_iterators() {
        let a = GridAssignment::initial(Mapping::new(2, 4));
        let row0: Vec<usize> = a.machines_for_row(0).collect();
        assert_eq!(row0, vec![0, 1, 2, 3]);
        let col2: Vec<usize> = a.machines_for_col(2).collect();
        assert_eq!(col2, vec![2, 6]);
    }
}
