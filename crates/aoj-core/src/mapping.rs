//! The grid-layout `(n,m)`-mapping scheme (§3.1, §3.4) and its evolution
//! under migrations.
//!
//! A join between streams R and S is a join-matrix; `J = n · m` joiners
//! each own one congruent rectangle: the joiner at grid position `(i, j)`
//! stores partition `Ri` and partition `Sj` and evaluates `Ri ⋈θ Sj`.
//! Every matrix cell is covered by exactly one joiner, so results are
//! complete and duplicate-free by construction.
//!
//! [`GridAssignment`] tracks which *physical machine* sits at which grid
//! position. Migrations relabel positions **locality-aware** (Fig. 3): when
//! `(n, m) → (n/2, 2m)`, machine `(i, j)` moves to `(i/2, 2j + (i mod 2))`,
//! so it keeps all its R state, exchanges R with a single partner, and
//! deterministically discards half its S state — the minimal-relocation
//! scheme of Lemma 4.4.

use crate::tuple::Rel;

/// An `(n, m)`-mapping: R is split into `n` row partitions and S into `m`
/// column partitions; `n · m = J`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mapping {
    /// Number of R partitions (rows).
    pub n: u32,
    /// Number of S partitions (columns).
    pub m: u32,
}

impl Mapping {
    /// Create a mapping. Both dimensions must be non-zero powers of two.
    pub fn new(n: u32, m: u32) -> Mapping {
        assert!(
            n.is_power_of_two() && m.is_power_of_two(),
            "(n,m) must be powers of two"
        );
        Mapping { n, m }
    }

    /// Total joiners `J = n · m`.
    #[inline]
    pub fn j(&self) -> u32 {
        self.n * self.m
    }

    /// The most square mapping for `j` joiners: `(2^⌊e/2⌋, 2^⌈e/2⌉)` where
    /// `j = 2^e`. This is the paper's **StaticMid** scheme `(√J, √J)`.
    pub fn square(j: u32) -> Mapping {
        assert!(j.is_power_of_two(), "J must be a power of two");
        let e = j.trailing_zeros();
        Mapping::new(1 << (e / 2), 1 << (e - e / 2))
    }

    /// `(n/2, 2m)` if `n ≥ 2`.
    pub fn halve_rows(&self) -> Option<Mapping> {
        (self.n >= 2).then(|| Mapping::new(self.n / 2, self.m * 2))
    }

    /// `(2n, m/2)` if `m ≥ 2`.
    pub fn halve_cols(&self) -> Option<Mapping> {
        (self.m >= 2).then(|| Mapping::new(self.n * 2, self.m / 2))
    }

    /// Partition count along `rel`'s axis: `n` for R, `m` for S.
    #[inline]
    pub fn parts(&self, rel: Rel) -> u32 {
        match rel {
            Rel::R => self.n,
            Rel::S => self.m,
        }
    }

    /// Replication factor of `rel`: how many joiners hold each partition
    /// (`m` for R, `n` for S).
    #[inline]
    pub fn replication(&self, rel: Rel) -> u32 {
        match rel {
            Rel::R => self.m,
            Rel::S => self.n,
        }
    }
}

/// A single adaptivity step. Lemma 4.2 proves the optimum never moves more
/// than one step per decision under Alg. 2 with ε = 1; larger jumps are
/// executed as chains of steps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// `(n, m) → (n/2, 2m)`: R partitions coarsen (pairwise exchange),
    /// S partitions refine (deterministic discard).
    HalveRows,
    /// `(n, m) → (2n, m/2)`: S coarsens, R refines.
    HalveCols,
}

impl Step {
    /// The relation whose partitions merge; its state is *exchanged*
    /// between partner joiners.
    pub fn coarsens(self) -> Rel {
        match self {
            Step::HalveRows => Rel::R,
            Step::HalveCols => Rel::S,
        }
    }

    /// The relation whose partitions split; each joiner *discards* the half
    /// that no longer belongs to it.
    pub fn refines(self) -> Rel {
        self.coarsens().other()
    }

    /// Apply to a mapping.
    pub fn apply(self, mapping: Mapping) -> Option<Mapping> {
        match self {
            Step::HalveRows => mapping.halve_rows(),
            Step::HalveCols => mapping.halve_cols(),
        }
    }
}

/// The chain of steps leading from `from` to `to` (same `J`). Empty if the
/// mappings are equal.
pub fn steps_between(from: Mapping, to: Mapping) -> Vec<Step> {
    assert_eq!(from.j(), to.j(), "steps_between requires equal J");
    let mut steps = Vec::new();
    let mut cur = from;
    while cur.n > to.n {
        steps.push(Step::HalveRows);
        cur = cur.halve_rows().expect("n > to.n >= 1");
    }
    while cur.m > to.m {
        steps.push(Step::HalveCols);
        cur = cur.halve_cols().expect("m > to.m >= 1");
    }
    debug_assert_eq!(cur, to);
    steps
}

/// A position in the grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GridPos {
    /// Row = R partition index owned.
    pub row: u32,
    /// Column = S partition index owned.
    pub col: u32,
}

/// Which physical machine sits at which grid position. Evolves under
/// migrations with the locality-aware relabelling of Fig. 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridAssignment {
    mapping: Mapping,
    /// machine index → grid position
    pos: Vec<GridPos>,
    /// row-major grid cell → machine index
    machine: Vec<u32>,
}

impl GridAssignment {
    /// The canonical initial assignment: machine `k` sits at
    /// `(k / m, k mod m)`.
    pub fn initial(mapping: Mapping) -> GridAssignment {
        let j = mapping.j() as usize;
        let mut pos = Vec::with_capacity(j);
        let mut machine = vec![0u32; j];
        for k in 0..j as u32 {
            let p = GridPos {
                row: k / mapping.m,
                col: k % mapping.m,
            };
            pos.push(p);
            machine[(p.row * mapping.m + p.col) as usize] = k;
        }
        GridAssignment {
            mapping,
            pos,
            machine,
        }
    }

    /// Rebuild an assignment from checkpointed parts: the mapping, the
    /// per-machine-slot positions (stale entries for retired machines are
    /// fine, exactly as the live struct keeps them), and the row-major
    /// cell → machine table. Validates the bijection between grid cells
    /// and the active machines before accepting.
    pub fn from_parts(
        mapping: Mapping,
        pos: Vec<GridPos>,
        machine: Vec<u32>,
    ) -> Result<GridAssignment, String> {
        if machine.len() != mapping.j() as usize {
            return Err(format!(
                "cell table has {} entries for a {}x{} mapping",
                machine.len(),
                mapping.n,
                mapping.m
            ));
        }
        for r in 0..mapping.n {
            for c in 0..mapping.m {
                let k = machine[(r * mapping.m + c) as usize] as usize;
                let p = pos
                    .get(k)
                    .ok_or_else(|| format!("cell ({r}, {c}) names unknown machine {k}"))?;
                if p.row != r || p.col != c {
                    return Err(format!(
                        "machine {k} position ({}, {}) disagrees with cell ({r}, {c})",
                        p.row, p.col
                    ));
                }
            }
        }
        Ok(GridAssignment {
            mapping,
            pos,
            machine,
        })
    }

    /// Current mapping.
    #[inline]
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    /// The raw per-machine-slot position table (includes stale entries
    /// for retired machines), for checkpointing.
    #[inline]
    pub fn pos_slice(&self) -> &[GridPos] {
        &self.pos
    }

    /// Number of machines.
    #[inline]
    pub fn j(&self) -> u32 {
        self.mapping.j()
    }

    /// Grid position of a machine.
    #[inline]
    pub fn pos_of(&self, machine: usize) -> GridPos {
        self.pos[machine]
    }

    /// Machine at a grid position.
    #[inline]
    pub fn machine_at(&self, row: u32, col: u32) -> usize {
        debug_assert!(row < self.mapping.n && col < self.mapping.m);
        self.machine[(row * self.mapping.m + col) as usize] as usize
    }

    /// The machines currently holding a grid cell — the **active** set.
    /// After elastic contractions this is no longer a contiguous prefix
    /// of the provisioned machine indices, so callers that used to
    /// iterate `0..j` must iterate this instead. Row-major cell order.
    pub fn machines(&self) -> impl Iterator<Item = usize> + '_ {
        self.machine.iter().map(|&k| k as usize)
    }

    /// Machines holding R partition `row` (the whole grid row).
    pub fn machines_for_row(&self, row: u32) -> impl Iterator<Item = usize> + '_ {
        (0..self.mapping.m).map(move |c| self.machine_at(row, c))
    }

    /// Machines holding S partition `col` (the whole grid column).
    pub fn machines_for_col(&self, col: u32) -> impl Iterator<Item = usize> + '_ {
        (0..self.mapping.n).map(move |r| self.machine_at(r, col))
    }

    /// New grid position of the machine currently at `p` after `step`.
    pub fn relabel(p: GridPos, step: Step) -> GridPos {
        match step {
            Step::HalveRows => GridPos {
                row: p.row >> 1,
                col: (p.col << 1) | (p.row & 1),
            },
            Step::HalveCols => GridPos {
                row: (p.row << 1) | (p.col & 1),
                col: p.col >> 1,
            },
        }
    }

    /// The exchange partner (Lemma 4.4) of the machine at `p`: the sibling
    /// that owns the other half of the merged partition.
    pub fn partner_pos(p: GridPos, step: Step) -> GridPos {
        match step {
            Step::HalveRows => GridPos {
                row: p.row ^ 1,
                col: p.col,
            },
            Step::HalveCols => GridPos {
                row: p.row,
                col: p.col ^ 1,
            },
        }
    }

    /// Apply a migration step, relabelling every **active** machine in
    /// place. Machines outside the grid — retired by an elastic
    /// contraction — keep their stale `pos` entries untouched (they are
    /// resynchronised wholesale when an expansion reactivates them);
    /// relabelling them here would write their stale positions into (or
    /// past) the new grid.
    pub fn apply_step(&mut self, step: Step) {
        let old = self.mapping;
        let new_mapping = step.apply(old).expect("mapping cannot shrink below 1");
        let mut machine = vec![0u32; new_mapping.j() as usize];
        for r in 0..old.n {
            for c in 0..old.m {
                let k = self.machine_at(r, c);
                let np = Self::relabel(GridPos { row: r, col: c }, step);
                self.pos[k] = np;
                machine[(np.row * new_mapping.m + np.col) as usize] = k as u32;
            }
        }
        self.mapping = new_mapping;
        self.machine = machine;
    }

    /// Apply an elastic ×4 expansion (§"Elasticity", Fig. 5): the mapping
    /// becomes `(2n, 2m)`; the machine previously at `(i, j)` stays at
    /// `(2i, 2j)` and three fresh machines fill the other three children.
    /// Fresh machine indices are allocated from `old_j ..` in a fixed
    /// deterministic order: for old machine `k`, children `(a, b) ≠ (0, 0)`
    /// get indices `old_j + 3k`, `old_j + 3k + 1`, `old_j + 3k + 2` for
    /// `(0,1)`, `(1,0)`, `(1,1)` respectively.
    pub fn apply_expansion(&mut self) {
        let old_j = self.j() as usize;
        let children: Vec<usize> = (old_j..4 * old_j).collect();
        self.apply_expansion_with(&children);
    }

    /// Apply a ×4 expansion with an explicit child machine allocation:
    /// `children` holds `3 · J` machine indices, and the parent occupying
    /// the `g`-th grid cell (row-major) hands cells `(0,1)`, `(1,0)`,
    /// `(1,1)` of its quadrant to `children[3g]`, `children[3g+1]`,
    /// `children[3g+2]`. This is how elastic re-expansion reuses machines
    /// retired by an earlier contraction (the dormant pool) instead of
    /// always growing the index space.
    pub fn apply_expansion_with(&mut self, children: &[usize]) {
        // Single source of truth: the same plan the reshufflers route
        // and signal by also drives the grid relabelling, so the two
        // cannot drift apart.
        let plan = crate::elastic::plan_expansion_with(self, children);
        let to = plan.to;
        let top = children
            .iter()
            .copied()
            .chain(self.machines())
            .max()
            .expect("non-empty grid");
        if self.pos.len() <= top {
            self.pos.resize(top + 1, GridPos { row: 0, col: 0 });
        }
        let mut machine = vec![0u32; to.j() as usize];
        for spec in &plan.specs {
            let p = spec.old_pos;
            // Child cell order is ExpandSpec's contract: the parent
            // stays at (0,0) of its quadrant, children fill (0,1),
            // (1,0), (1,1).
            let cells = [
                (
                    spec.machine,
                    GridPos {
                        row: 2 * p.row,
                        col: 2 * p.col,
                    },
                ),
                (
                    spec.children[0],
                    GridPos {
                        row: 2 * p.row,
                        col: 2 * p.col + 1,
                    },
                ),
                (
                    spec.children[1],
                    GridPos {
                        row: 2 * p.row + 1,
                        col: 2 * p.col,
                    },
                ),
                (
                    spec.children[2],
                    GridPos {
                        row: 2 * p.row + 1,
                        col: 2 * p.col + 1,
                    },
                ),
            ];
            for (idx, cp) in cells {
                self.pos[idx] = cp;
                machine[(cp.row * to.m + cp.col) as usize] = idx as u32;
            }
        }
        self.mapping = to;
        self.machine = machine;
    }

    /// Apply an elastic 4→1 **contraction** (the reverse of
    /// [`apply_expansion`](GridAssignment::apply_expansion)): the mapping
    /// becomes `(n/2, m/2)` and each aligned 2×2 cell group merges into
    /// one survivor — the **lowest-indexed** machine of the group, so
    /// machine 0 (the controller's machine) can never retire. Returns the
    /// retired machine indices, sorted ascending; their `pos` entries go
    /// stale until a later expansion reactivates them.
    pub fn apply_contraction(&mut self) -> Vec<usize> {
        // Single source of truth: the plan the reshufflers signal by
        // (survivor choice, retiree roles) also drives the relabelling.
        let plan = crate::elastic::plan_contraction(self);
        let to = plan.to;
        let mut machine = vec![0u32; to.j() as usize];
        // `specs` lists groups in row-major order of the contracted
        // grid, survivor first within each group (the documented
        // `ContractionPlan` layout).
        for (g, group) in plan.specs.chunks(4).enumerate() {
            let survivor = group[0].machine;
            debug_assert_eq!(group[0].role, crate::elastic::ContractRole::Survive);
            let p = GridPos {
                row: g as u32 / to.m,
                col: g as u32 % to.m,
            };
            self.pos[survivor] = p;
            machine[g] = survivor as u32;
        }
        self.mapping = to;
        self.machine = machine;
        plan.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_mapping() {
        assert_eq!(Mapping::square(16), Mapping::new(4, 4));
        assert_eq!(Mapping::square(64), Mapping::new(8, 8));
        assert_eq!(Mapping::square(32), Mapping::new(4, 8));
        assert_eq!(Mapping::square(1), Mapping::new(1, 1));
    }

    #[test]
    fn halving_bounds() {
        let m = Mapping::new(1, 8);
        assert!(m.halve_rows().is_none());
        assert_eq!(m.halve_cols(), Some(Mapping::new(2, 4)));
    }

    #[test]
    fn parts_and_replication() {
        let m = Mapping::new(2, 8);
        assert_eq!(m.parts(Rel::R), 2);
        assert_eq!(m.parts(Rel::S), 8);
        assert_eq!(m.replication(Rel::R), 8);
        assert_eq!(m.replication(Rel::S), 2);
        assert_eq!(m.j(), 16);
    }

    #[test]
    fn steps_between_chains() {
        let from = Mapping::new(8, 2);
        let to = Mapping::new(1, 16);
        let steps = steps_between(from, to);
        assert_eq!(steps, vec![Step::HalveRows; 3]);
        let mut cur = from;
        for s in steps {
            cur = s.apply(cur).unwrap();
        }
        assert_eq!(cur, to);

        assert!(steps_between(from, from).is_empty());
        assert_eq!(
            steps_between(Mapping::new(2, 8), Mapping::new(8, 2)),
            vec![Step::HalveCols; 2]
        );
    }

    #[test]
    fn initial_assignment_is_row_major_bijection() {
        let a = GridAssignment::initial(Mapping::new(4, 4));
        for k in 0..16 {
            let p = a.pos_of(k);
            assert_eq!(a.machine_at(p.row, p.col), k);
        }
        assert_eq!(a.pos_of(5), GridPos { row: 1, col: 1 });
    }

    #[test]
    fn relabel_matches_fig3() {
        // Fig. 3 migrates (8,2) -> (4,4). Machine at (i, j) moves to
        // (i/2, 2j + i%2); partners are (i^1, j).
        let p = GridPos { row: 5, col: 1 };
        let np = GridAssignment::relabel(p, Step::HalveRows);
        assert_eq!(np, GridPos { row: 2, col: 3 });
        let partner = GridAssignment::partner_pos(p, Step::HalveRows);
        assert_eq!(partner, GridPos { row: 4, col: 1 });
        // Partner lands on the sibling column of the same new row.
        let npp = GridAssignment::relabel(partner, Step::HalveRows);
        assert_eq!(npp, GridPos { row: 2, col: 2 });
    }

    #[test]
    fn apply_step_remains_bijective() {
        let mut a = GridAssignment::initial(Mapping::new(8, 2));
        a.apply_step(Step::HalveRows);
        assert_eq!(a.mapping(), Mapping::new(4, 4));
        let mut seen = [false; 16];
        for r in 0..4 {
            for c in 0..4 {
                let k = a.machine_at(r, c);
                assert!(!seen[k], "machine {k} appears twice");
                seen[k] = true;
                assert_eq!(a.pos_of(k), GridPos { row: r, col: c });
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn partners_merge_to_same_row() {
        let a = GridAssignment::initial(Mapping::new(8, 2));
        for k in 0..16 {
            let p = a.pos_of(k);
            let partner = GridAssignment::partner_pos(p, Step::HalveRows);
            let np = GridAssignment::relabel(p, Step::HalveRows);
            let npp = GridAssignment::relabel(partner, Step::HalveRows);
            assert_eq!(np.row, npp.row, "partners must share the merged row");
            assert_ne!(np.col, npp.col, "partners must own complementary cols");
        }
    }

    #[test]
    fn long_step_chains_stay_bijective() {
        let mut a = GridAssignment::initial(Mapping::new(8, 8));
        for step in [
            Step::HalveRows,
            Step::HalveRows,
            Step::HalveCols,
            Step::HalveCols,
            Step::HalveCols,
            Step::HalveRows,
        ] {
            a.apply_step(step);
            let mp = a.mapping();
            let mut seen = vec![false; mp.j() as usize];
            for r in 0..mp.n {
                for c in 0..mp.m {
                    let k = a.machine_at(r, c);
                    assert!(!seen[k]);
                    seen[k] = true;
                }
            }
        }
        // (8,8) →HR (4,16) →HR (2,32) →HC (4,16) →HC (8,8) →HC (16,4)
        // →HR (8,8).
        assert_eq!(a.mapping(), Mapping::new(8, 8));
    }

    #[test]
    fn expansion_quadruples_grid() {
        let mut a = GridAssignment::initial(Mapping::new(2, 2));
        a.apply_expansion();
        assert_eq!(a.mapping(), Mapping::new(4, 4));
        // Old machine 0 was at (0,0); it stays at (0,0) and its children
        // occupy (0,1), (1,0), (1,1) with indices 4,5,6.
        assert_eq!(a.machine_at(0, 0), 0);
        assert_eq!(a.machine_at(0, 1), 4);
        assert_eq!(a.machine_at(1, 0), 5);
        assert_eq!(a.machine_at(1, 1), 6);
        // Bijectivity.
        let mut seen = [false; 16];
        for r in 0..4 {
            for c in 0..4 {
                let k = a.machine_at(r, c);
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
    }

    #[test]
    fn contraction_reverses_expansion() {
        let mut a = GridAssignment::initial(Mapping::new(2, 2));
        let before = a.clone();
        a.apply_expansion();
        let retired = a.apply_contraction();
        assert_eq!(a.mapping(), Mapping::new(2, 2));
        // Parents sit at (even, even) and are the minimum of their group,
        // so the original four machines survive at their original cells.
        for k in 0..4 {
            assert_eq!(a.pos_of(k), before.pos_of(k));
        }
        assert_eq!(retired, (4..16).collect::<Vec<_>>());
    }

    #[test]
    fn contraction_survivor_is_group_minimum_after_migrations() {
        // Expand (2,2) -> (4,4), then migrate (4,4) -> (2,8): the group
        // members are scrambled, but the survivor of every group must be
        // its lowest machine index — and machine 0 must always survive.
        let mut a = GridAssignment::initial(Mapping::new(2, 2));
        a.apply_expansion();
        a.apply_step(Step::HalveRows);
        let pre = a.clone();
        let retired = a.apply_contraction();
        assert_eq!(a.mapping(), Mapping::new(1, 4));
        assert_eq!(retired.len(), 12);
        assert!(!retired.contains(&0), "machine 0 can never retire");
        let mut seen = Vec::new();
        for c in 0..4 {
            let s = a.machine_at(0, c);
            // The survivor owned one of the group's four old cells.
            let p = pre.pos_of(s);
            assert_eq!(p.col / 2, c);
            assert!(!retired.contains(&s));
            seen.push(s);
        }
        let mut all: Vec<usize> = seen.iter().copied().chain(retired).collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>(), "partition of machines");
    }

    #[test]
    fn expansion_with_pool_children_reuses_retired_indices() {
        let mut a = GridAssignment::initial(Mapping::new(1, 1));
        a.apply_expansion(); // children 1, 2, 3
        let retired = a.apply_contraction();
        assert_eq!(retired, vec![1, 2, 3]);
        // Re-expand into the retired pool: no fresh indices needed.
        a.apply_expansion_with(&retired);
        assert_eq!(a.mapping(), Mapping::new(2, 2));
        let mut active: Vec<usize> = a.machines().collect();
        active.sort_unstable();
        assert_eq!(active, vec![0, 1, 2, 3]);
        for k in 0..4 {
            let p = a.pos_of(k);
            assert_eq!(a.machine_at(p.row, p.col), k);
        }
    }

    #[test]
    #[should_panic(expected = "contraction needs both grid axes")]
    fn contraction_requires_even_axes() {
        let mut a = GridAssignment::initial(Mapping::new(4, 1));
        a.apply_contraction();
    }

    #[test]
    fn migration_steps_after_contraction_ignore_stale_retired_positions() {
        // Regression: expand (2,2)→(4,4), contract back, then migrate.
        // apply_step must relabel only the active machines — the twelve
        // retired machines' stale (4,4)-grid positions must neither
        // index past the new 4-cell grid nor overwrite live cells.
        let mut a = GridAssignment::initial(Mapping::new(2, 2));
        a.apply_expansion();
        let retired = a.apply_contraction();
        a.apply_step(Step::HalveRows);
        assert_eq!(a.mapping(), Mapping::new(1, 4));
        let mut seen = Vec::new();
        for c in 0..4 {
            let k = a.machine_at(0, c);
            assert!(!retired.contains(&k), "retired machine re-entered grid");
            assert_eq!(a.pos_of(k), GridPos { row: 0, col: c });
            seen.push(k);
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "active machines must stay a bijection");
        // And the grid keeps working through the reverse step too.
        a.apply_step(Step::HalveCols);
        assert_eq!(a.mapping(), Mapping::new(2, 2));
    }

    #[test]
    fn row_and_col_iterators() {
        let a = GridAssignment::initial(Mapping::new(2, 4));
        let row0: Vec<usize> = a.machines_for_row(0).collect();
        assert_eq!(row0, vec![0, 1, 2, 3]);
        let col2: Vec<usize> = a.machines_for_col(2).collect();
        assert_eq!(col2, vec![2, 6]);
    }
}
