//! The local join-state abstraction.
//!
//! §3.2: "Any flavor of non-blocking join algorithm can be independently
//! adopted at each joiner task." [`JoinIndex`] is that plug-in point: a
//! two-sided tuple store that supports the insert/probe pattern of local
//! non-blocking joins plus the bulk operations migrations need (drain,
//! filtered extraction, iteration). `aoj-joinalg` provides indexed
//! implementations (symmetric hash, B-tree band, nested loop);
//! [`VecIndex`] here is the obvious-by-inspection reference used by tests
//! and by the epoch-protocol correctness proofs.

use crate::predicate::Predicate;
use crate::tuple::{Rel, Tuple};

/// Statistics from one probe: how many index entries were scanned and how
/// many satisfied the predicate. Feeds the CPU cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Index entries examined.
    pub candidates: u64,
    /// Matches found (after the optional filter).
    pub matches: u64,
}

impl std::ops::Add for ProbeStats {
    type Output = ProbeStats;
    fn add(self, rhs: ProbeStats) -> ProbeStats {
        ProbeStats {
            candidates: self.candidates + rhs.candidates,
            matches: self.matches + rhs.matches,
        }
    }
}

impl std::ops::AddAssign for ProbeStats {
    fn add_assign(&mut self, rhs: ProbeStats) {
        *self = *self + rhs;
    }
}

/// A two-sided store of R and S tuples supporting insert-probe joins and
/// the bulk state operations used by migrations.
///
/// `Send` is a supertrait so joiner tasks holding boxed indexes can be
/// moved onto worker threads by threaded execution backends.
pub trait JoinIndex: Send {
    /// Insert a tuple into its relation's side.
    fn insert(&mut self, t: Tuple);

    /// Find matches between `t` and stored tuples of the *opposite*
    /// relation, but only those stored tuples accepted by `filter`;
    /// `on_match` is invoked once per match. Returns scan statistics.
    ///
    /// The filter is how the epoch protocol joins against `Keep(τ ∪ Δ)`
    /// without physically splitting the τ index mid-migration.
    fn probe_filtered(
        &mut self,
        t: &Tuple,
        filter: &mut dyn FnMut(&Tuple) -> bool,
        on_match: &mut dyn FnMut(&Tuple),
    ) -> ProbeStats;

    /// Unfiltered probe.
    fn probe(&mut self, t: &Tuple, on_match: &mut dyn FnMut(&Tuple)) -> ProbeStats {
        self.probe_filtered(t, &mut |_| true, on_match)
    }

    /// Probe counting matches only.
    fn probe_count(&mut self, t: &Tuple) -> ProbeStats {
        self.probe_filtered(t, &mut |_| true, &mut |_| {})
    }

    /// Number of stored tuples, both sides.
    fn len(&self) -> usize;

    /// True if no tuples are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stored tuples of one relation.
    fn len_rel(&self, rel: Rel) -> usize;

    /// Total stored payload bytes.
    fn bytes(&self) -> u64;

    /// Remove and return all tuples.
    fn drain(&mut self) -> Vec<Tuple>;

    /// Remove and return the tuples for which `pred` is true (discards and
    /// migration extraction).
    fn extract(&mut self, pred: &mut dyn FnMut(&Tuple) -> bool) -> Vec<Tuple>;

    /// Visit every stored tuple.
    fn for_each(&self, f: &mut dyn FnMut(&Tuple));

    /// Collect every stored tuple (testing convenience).
    fn snapshot(&self) -> Vec<Tuple> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each(&mut |t| v.push(*t));
        v
    }
}

/// Reference [`JoinIndex`]: two plain vectors and a linear scan per probe.
/// O(|state|) probes, but trivially correct for any predicate — the
/// yardstick the optimised indexes are tested against.
pub struct VecIndex {
    predicate: Predicate,
    r: Vec<Tuple>,
    s: Vec<Tuple>,
    bytes: u64,
}

impl VecIndex {
    /// Create an empty store joining with `predicate`.
    pub fn new(predicate: Predicate) -> VecIndex {
        VecIndex {
            predicate,
            r: Vec::new(),
            s: Vec::new(),
            bytes: 0,
        }
    }

    fn side(&self, rel: Rel) -> &Vec<Tuple> {
        match rel {
            Rel::R => &self.r,
            Rel::S => &self.s,
        }
    }
}

impl JoinIndex for VecIndex {
    fn insert(&mut self, t: Tuple) {
        self.bytes += t.bytes as u64;
        match t.rel {
            Rel::R => self.r.push(t),
            Rel::S => self.s.push(t),
        }
    }

    fn probe_filtered(
        &mut self,
        t: &Tuple,
        filter: &mut dyn FnMut(&Tuple) -> bool,
        on_match: &mut dyn FnMut(&Tuple),
    ) -> ProbeStats {
        let mut stats = ProbeStats::default();
        let others = self.side(t.rel.other());
        stats.candidates = others.len() as u64;
        for other in others {
            if self.predicate.matches_pair(t, other) && filter(other) {
                stats.matches += 1;
                on_match(other);
            }
        }
        stats
    }

    fn len(&self) -> usize {
        self.r.len() + self.s.len()
    }

    fn len_rel(&self, rel: Rel) -> usize {
        self.side(rel).len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn drain(&mut self) -> Vec<Tuple> {
        self.bytes = 0;
        let mut out = std::mem::take(&mut self.r);
        out.append(&mut self.s);
        out
    }

    fn extract(&mut self, pred: &mut dyn FnMut(&Tuple) -> bool) -> Vec<Tuple> {
        let mut out = Vec::new();
        for side in [&mut self.r, &mut self.s] {
            let mut i = 0;
            while i < side.len() {
                if pred(&side[i]) {
                    out.push(side.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for t in &out {
            self.bytes -= t.bytes as u64;
        }
        out
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple)) {
        for t in &self.r {
            f(t);
        }
        for t in &self.s {
            f(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(seq: u64, key: i64) -> Tuple {
        Tuple::new(Rel::R, seq, key, seq.wrapping_mul(0x9E3779B97F4A7C15))
    }
    fn s(seq: u64, key: i64) -> Tuple {
        Tuple::new(Rel::S, seq, key, seq.wrapping_mul(0x9E3779B97F4A7C15))
    }

    #[test]
    fn insert_probe_symmetric_hash_pattern() {
        let mut idx = VecIndex::new(Predicate::Equi);
        assert_eq!(idx.probe_count(&r(0, 5)).matches, 0);
        idx.insert(r(0, 5));
        idx.insert(r(1, 6));
        let stats = idx.probe_count(&s(2, 5));
        assert_eq!(stats.matches, 1);
        assert_eq!(stats.candidates, 2);
        idx.insert(s(2, 5));
        // R probe sees the stored S tuple.
        assert_eq!(idx.probe_count(&r(3, 5)).matches, 1);
    }

    #[test]
    fn filtered_probe_restricts_matches() {
        let mut idx = VecIndex::new(Predicate::Equi);
        idx.insert(r(0, 1));
        idx.insert(r(1, 1));
        let mut only_even_seq = |t: &Tuple| t.seq.is_multiple_of(2);
        let stats = idx.probe_filtered(&s(5, 1), &mut only_even_seq, &mut |_| {});
        assert_eq!(stats.matches, 1);
        assert_eq!(stats.candidates, 2);
    }

    #[test]
    fn extract_removes_and_updates_bytes() {
        let mut idx = VecIndex::new(Predicate::Equi);
        for i in 0..10 {
            idx.insert(r(i, i as i64));
        }
        let total = idx.bytes();
        let removed = idx.extract(&mut |t| t.key < 5);
        assert_eq!(removed.len(), 5);
        assert_eq!(idx.len(), 5);
        assert_eq!(
            idx.bytes(),
            total - removed.iter().map(|t| t.bytes as u64).sum::<u64>()
        );
    }

    #[test]
    fn drain_empties() {
        let mut idx = VecIndex::new(Predicate::CrossProduct);
        idx.insert(r(0, 0));
        idx.insert(s(1, 0));
        let all = idx.drain();
        assert_eq!(all.len(), 2);
        assert!(idx.is_empty());
        assert_eq!(idx.bytes(), 0);
    }

    #[test]
    fn len_rel_counts_sides() {
        let mut idx = VecIndex::new(Predicate::Equi);
        idx.insert(r(0, 0));
        idx.insert(r(1, 0));
        idx.insert(s(2, 0));
        assert_eq!(idx.len_rel(Rel::R), 2);
        assert_eq!(idx.len_rel(Rel::S), 1);
        assert_eq!(idx.snapshot().len(), 3);
    }

    #[test]
    fn on_match_receives_partners() {
        let mut idx = VecIndex::new(Predicate::Band { width: 1 });
        idx.insert(s(0, 10));
        idx.insert(s(1, 11));
        idx.insert(s(2, 13));
        let mut partners = Vec::new();
        idx.probe(&r(3, 11), &mut |t| partners.push(t.key));
        partners.sort();
        assert_eq!(partners, vec![10, 11]);
    }
}
