//! The local join-state abstraction.
//!
//! §3.2: "Any flavor of non-blocking join algorithm can be independently
//! adopted at each joiner task." [`JoinIndex`] is that plug-in point: a
//! two-sided tuple store that supports the insert/probe pattern of local
//! non-blocking joins plus the bulk operations migrations need (drain,
//! filtered extraction, iteration). `aoj-joinalg` provides indexed
//! implementations (symmetric hash, B-tree band, nested loop);
//! [`VecIndex`] here is the obvious-by-inspection reference used by tests
//! and by the epoch-protocol correctness proofs.

use crate::lifecycle::EvictStats;
use crate::predicate::Predicate;
use crate::tuple::{Rel, Tuple};

/// Statistics from one probe: how many index entries were scanned and how
/// many satisfied the predicate. Feeds the CPU cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Index entries examined.
    pub candidates: u64,
    /// Matches found (after the optional filter).
    pub matches: u64,
}

impl std::ops::Add for ProbeStats {
    type Output = ProbeStats;
    fn add(self, rhs: ProbeStats) -> ProbeStats {
        ProbeStats {
            candidates: self.candidates + rhs.candidates,
            matches: self.matches + rhs.matches,
        }
    }
}

impl std::ops::AddAssign for ProbeStats {
    fn add_assign(&mut self, rhs: ProbeStats) {
        *self = *self + rhs;
    }
}

/// A two-sided store of R and S tuples supporting insert-probe joins and
/// the bulk state operations used by migrations.
///
/// `Send` is a supertrait so joiner tasks holding boxed indexes can be
/// moved onto worker threads by threaded execution backends.
pub trait JoinIndex: Send {
    /// Insert a tuple into its relation's side.
    fn insert(&mut self, t: Tuple);

    /// Find matches between `t` and stored tuples of the *opposite*
    /// relation, but only those stored tuples accepted by `filter`;
    /// `on_match` is invoked once per match. Returns scan statistics.
    ///
    /// The filter is how the epoch protocol joins against `Keep(τ ∪ Δ)`
    /// without physically splitting the τ index mid-migration.
    fn probe_filtered(
        &mut self,
        t: &Tuple,
        filter: &mut dyn FnMut(&Tuple) -> bool,
        on_match: &mut dyn FnMut(&Tuple),
    ) -> ProbeStats;

    /// Unfiltered probe.
    fn probe(&mut self, t: &Tuple, on_match: &mut dyn FnMut(&Tuple)) -> ProbeStats {
        self.probe_filtered(t, &mut |_| true, on_match)
    }

    /// Insert every tuple of `batch` (in order).
    fn insert_batch(&mut self, batch: &[Tuple]) {
        for t in batch {
            self.insert(*t);
        }
    }

    /// Probe each `probes[i]` against the stored state, invoking
    /// `on_match(i, stored)` once per match of `probes[i]`.
    ///
    /// Semantically identical to `probes.iter().map(|t| self.probe(t))` —
    /// probes are **not** matched against each other and are **not**
    /// inserted — but implementations may amortise the per-probe index
    /// work across the batch (sorting and merging a range scan, sharing
    /// bucket lookups between equal keys). The invocation *order* of
    /// `on_match` is unspecified; the per-probe match sets and the summed
    /// [`ProbeStats`] are not.
    fn probe_batch(
        &mut self,
        probes: &[Tuple],
        on_match: &mut dyn FnMut(usize, &Tuple),
    ) -> ProbeStats {
        let mut stats = ProbeStats::default();
        for (i, t) in probes.iter().enumerate() {
            stats += self.probe(t, &mut |stored| on_match(i, stored));
        }
        stats
    }

    /// Probe counting matches only.
    fn probe_count(&mut self, t: &Tuple) -> ProbeStats {
        self.probe_filtered(t, &mut |_| true, &mut |_| {})
    }

    /// Number of stored tuples, both sides.
    fn len(&self) -> usize;

    /// True if no tuples are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stored tuples of one relation.
    fn len_rel(&self, rel: Rel) -> usize;

    /// Total stored payload bytes.
    fn bytes(&self) -> u64;

    /// Remove and return all tuples.
    fn drain(&mut self) -> Vec<Tuple>;

    /// Remove and return the tuples for which `pred` is true (discards and
    /// migration extraction).
    fn extract(&mut self, pred: &mut dyn FnMut(&Tuple) -> bool) -> Vec<Tuple>;

    /// Visit every stored tuple.
    fn for_each(&self, f: &mut dyn FnMut(&Tuple));

    /// Close the current run of inserts into a **sealed segment** (a
    /// PanJoin-style sub-window, arXiv:1811.05065): sealed tuples stay
    /// fully probe-able, but [`evict_before`](JoinIndex::evict_before)
    /// may later drop the segment wholesale instead of deleting tuples
    /// one at a time. Sealing an empty run is a no-op. The default does
    /// nothing — an index without segment support simply falls back to
    /// per-tuple eviction.
    fn seal_segment(&mut self) {}

    /// Drop stored tuples that are entirely outside the retention
    /// window: every **sealed segment** whose maximum sequence number is
    /// below `bound` is discarded whole (O(1) per segment for segmented
    /// indexes). Tuples in the active (unsealed) run, and sealed
    /// segments straddling the bound, are retained — eviction is
    /// conservative, never early. Returns what was dropped.
    ///
    /// The default implementation extracts per-tuple (`seq < bound`),
    /// for indexes without segment support.
    fn evict_before(&mut self, bound: u64) -> EvictStats {
        let removed = self.extract(&mut |t| t.seq < bound);
        EvictStats {
            tuples: removed.len() as u64,
            bytes: removed.iter().map(|t| t.bytes as u64).sum(),
        }
    }

    /// Sealed segments currently held (0 for unsegmented indexes).
    fn sealed_segments(&self) -> usize {
        0
    }

    /// Collect every stored tuple (testing convenience).
    fn snapshot(&self) -> Vec<Tuple> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each(&mut |t| v.push(*t));
        v
    }
}

/// Stream-process a batch of arriving tuples against `idx` using the bulk
/// index operations: every tuple probes the state *as it stood at the
/// tuple's own position in the stream* (earlier batch tuples included),
/// then is inserted — exactly equivalent to per-tuple `probe` + `insert`,
/// which is what a batch-of-one degenerates to.
///
/// The trick that keeps bulk probes exact: probes only ever scan the
/// *opposite* relation, so tuples of the same relation can never match
/// each other. Splitting the batch into maximal single-relation runs
/// therefore lets a whole run probe via [`JoinIndex::probe_batch`] before
/// any of it is inserted, with earlier runs already in the index when
/// later runs probe — no intra-batch pair is missed or duplicated.
///
/// `on_match(i, stored)` receives the index of the probing tuple within
/// `batch` plus the matched stored tuple.
pub fn process_stream_batch(
    idx: &mut dyn JoinIndex,
    batch: &[Tuple],
    on_match: &mut dyn FnMut(usize, &Tuple),
) -> ProbeStats {
    let mut stats = ProbeStats::default();
    let mut start = 0;
    while start < batch.len() {
        let rel = batch[start].rel;
        let mut end = start + 1;
        while end < batch.len() && batch[end].rel == rel {
            end += 1;
        }
        let run = &batch[start..end];
        stats += idx.probe_batch(run, &mut |i, stored| on_match(start + i, stored));
        idx.insert_batch(run);
        start = end;
    }
    stats
}

/// One sealed sub-window of a [`VecIndex`]: a closed run of tuples that
/// expires wholesale.
struct VecSegment {
    r: Vec<Tuple>,
    s: Vec<Tuple>,
    bytes: u64,
    max_seq: u64,
}

/// Reference [`JoinIndex`]: plain vectors and a linear scan per probe.
/// O(|state|) probes, but trivially correct for any predicate — the
/// yardstick the optimised indexes are tested against. Supports sealed
/// segments natively: the active run lives in `r`/`s`, closed runs move
/// into `sealed` (still probed, droppable whole). With no sealing the
/// struct degenerates to the original two-vector store.
pub struct VecIndex {
    predicate: Predicate,
    r: Vec<Tuple>,
    s: Vec<Tuple>,
    bytes: u64,
    active_max_seq: u64,
    sealed: Vec<VecSegment>,
}

impl VecIndex {
    /// Create an empty store joining with `predicate`.
    pub fn new(predicate: Predicate) -> VecIndex {
        VecIndex {
            predicate,
            r: Vec::new(),
            s: Vec::new(),
            bytes: 0,
            active_max_seq: 0,
            sealed: Vec::new(),
        }
    }

    fn side(&self, rel: Rel) -> &Vec<Tuple> {
        match rel {
            Rel::R => &self.r,
            Rel::S => &self.s,
        }
    }
}

impl JoinIndex for VecIndex {
    fn insert(&mut self, t: Tuple) {
        self.bytes += t.bytes as u64;
        self.active_max_seq = self.active_max_seq.max(t.seq);
        match t.rel {
            Rel::R => self.r.push(t),
            Rel::S => self.s.push(t),
        }
    }

    fn probe_filtered(
        &mut self,
        t: &Tuple,
        filter: &mut dyn FnMut(&Tuple) -> bool,
        on_match: &mut dyn FnMut(&Tuple),
    ) -> ProbeStats {
        let mut stats = ProbeStats::default();
        let other_rel = t.rel.other();
        let sealed_sides = self.sealed.iter().map(|seg| match other_rel {
            Rel::R => &seg.r,
            Rel::S => &seg.s,
        });
        for others in sealed_sides.chain(std::iter::once(self.side(other_rel))) {
            stats.candidates += others.len() as u64;
            for other in others {
                if self.predicate.matches_pair(t, other) && filter(other) {
                    stats.matches += 1;
                    on_match(other);
                }
            }
        }
        stats
    }

    fn probe_batch(
        &mut self,
        probes: &[Tuple],
        on_match: &mut dyn FnMut(usize, &Tuple),
    ) -> ProbeStats {
        // One sequential scan of each stored side serves every probe of
        // the opposite relation — same predicate evaluations as N
        // independent probes, one pass over the state.
        let mut stats = ProbeStats::default();
        for rel in [Rel::R, Rel::S] {
            let idxs: Vec<usize> = (0..probes.len())
                .filter(|&i| probes[i].rel == rel)
                .collect();
            if idxs.is_empty() {
                continue;
            }
            let other_rel = rel.other();
            let sealed_sides = self.sealed.iter().map(|seg| match other_rel {
                Rel::R => &seg.r,
                Rel::S => &seg.s,
            });
            for others in sealed_sides.chain(std::iter::once(self.side(other_rel))) {
                stats.candidates += (others.len() * idxs.len()) as u64;
                for other in others {
                    for &i in &idxs {
                        if self.predicate.matches_pair(&probes[i], other) {
                            stats.matches += 1;
                            on_match(i, other);
                        }
                    }
                }
            }
        }
        stats
    }

    fn len(&self) -> usize {
        self.r.len()
            + self.s.len()
            + self
                .sealed
                .iter()
                .map(|seg| seg.r.len() + seg.s.len())
                .sum::<usize>()
    }

    fn len_rel(&self, rel: Rel) -> usize {
        self.side(rel).len()
            + self
                .sealed
                .iter()
                .map(|seg| match rel {
                    Rel::R => seg.r.len(),
                    Rel::S => seg.s.len(),
                })
                .sum::<usize>()
    }

    fn bytes(&self) -> u64 {
        self.bytes + self.sealed.iter().map(|seg| seg.bytes).sum::<u64>()
    }

    fn drain(&mut self) -> Vec<Tuple> {
        self.bytes = 0;
        self.active_max_seq = 0;
        let mut out = Vec::new();
        for mut seg in std::mem::take(&mut self.sealed) {
            out.append(&mut seg.r);
            out.append(&mut seg.s);
        }
        out.append(&mut self.r);
        out.append(&mut self.s);
        out
    }

    fn extract(&mut self, pred: &mut dyn FnMut(&Tuple) -> bool) -> Vec<Tuple> {
        let mut out = Vec::new();
        for seg in &mut self.sealed {
            let before = out.len();
            for side in [&mut seg.r, &mut seg.s] {
                let mut i = 0;
                while i < side.len() {
                    if pred(&side[i]) {
                        out.push(side.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            // Stale max_seq after removals only delays eviction — safe.
            for t in &out[before..] {
                seg.bytes -= t.bytes as u64;
            }
        }
        self.sealed.retain(|seg| seg.r.len() + seg.s.len() > 0);
        let before = out.len();
        for side in [&mut self.r, &mut self.s] {
            let mut i = 0;
            while i < side.len() {
                if pred(&side[i]) {
                    out.push(side.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        for t in &out[before..] {
            self.bytes -= t.bytes as u64;
        }
        out
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple)) {
        for seg in &self.sealed {
            for t in &seg.r {
                f(t);
            }
            for t in &seg.s {
                f(t);
            }
        }
        for t in &self.r {
            f(t);
        }
        for t in &self.s {
            f(t);
        }
    }

    fn seal_segment(&mut self) {
        if self.r.is_empty() && self.s.is_empty() {
            return;
        }
        self.sealed.push(VecSegment {
            r: std::mem::take(&mut self.r),
            s: std::mem::take(&mut self.s),
            bytes: self.bytes,
            max_seq: self.active_max_seq,
        });
        self.bytes = 0;
        self.active_max_seq = 0;
    }

    fn evict_before(&mut self, bound: u64) -> EvictStats {
        let mut stats = EvictStats::default();
        self.sealed.retain(|seg| {
            if seg.max_seq < bound {
                stats.tuples += (seg.r.len() + seg.s.len()) as u64;
                stats.bytes += seg.bytes;
                false
            } else {
                true
            }
        });
        stats
    }

    fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(seq: u64, key: i64) -> Tuple {
        Tuple::new(Rel::R, seq, key, seq.wrapping_mul(0x9E3779B97F4A7C15))
    }
    fn s(seq: u64, key: i64) -> Tuple {
        Tuple::new(Rel::S, seq, key, seq.wrapping_mul(0x9E3779B97F4A7C15))
    }

    #[test]
    fn insert_probe_symmetric_hash_pattern() {
        let mut idx = VecIndex::new(Predicate::Equi);
        assert_eq!(idx.probe_count(&r(0, 5)).matches, 0);
        idx.insert(r(0, 5));
        idx.insert(r(1, 6));
        let stats = idx.probe_count(&s(2, 5));
        assert_eq!(stats.matches, 1);
        assert_eq!(stats.candidates, 2);
        idx.insert(s(2, 5));
        // R probe sees the stored S tuple.
        assert_eq!(idx.probe_count(&r(3, 5)).matches, 1);
    }

    #[test]
    fn filtered_probe_restricts_matches() {
        let mut idx = VecIndex::new(Predicate::Equi);
        idx.insert(r(0, 1));
        idx.insert(r(1, 1));
        let mut only_even_seq = |t: &Tuple| t.seq.is_multiple_of(2);
        let stats = idx.probe_filtered(&s(5, 1), &mut only_even_seq, &mut |_| {});
        assert_eq!(stats.matches, 1);
        assert_eq!(stats.candidates, 2);
    }

    #[test]
    fn extract_removes_and_updates_bytes() {
        let mut idx = VecIndex::new(Predicate::Equi);
        for i in 0..10 {
            idx.insert(r(i, i as i64));
        }
        let total = idx.bytes();
        let removed = idx.extract(&mut |t| t.key < 5);
        assert_eq!(removed.len(), 5);
        assert_eq!(idx.len(), 5);
        assert_eq!(
            idx.bytes(),
            total - removed.iter().map(|t| t.bytes as u64).sum::<u64>()
        );
    }

    #[test]
    fn drain_empties() {
        let mut idx = VecIndex::new(Predicate::CrossProduct);
        idx.insert(r(0, 0));
        idx.insert(s(1, 0));
        let all = idx.drain();
        assert_eq!(all.len(), 2);
        assert!(idx.is_empty());
        assert_eq!(idx.bytes(), 0);
    }

    #[test]
    fn len_rel_counts_sides() {
        let mut idx = VecIndex::new(Predicate::Equi);
        idx.insert(r(0, 0));
        idx.insert(r(1, 0));
        idx.insert(s(2, 0));
        assert_eq!(idx.len_rel(Rel::R), 2);
        assert_eq!(idx.len_rel(Rel::S), 1);
        assert_eq!(idx.snapshot().len(), 3);
    }

    #[test]
    fn probe_batch_equals_independent_probes() {
        let mut idx = VecIndex::new(Predicate::Band { width: 1 });
        for i in 0..40 {
            idx.insert(if i % 3 == 0 {
                r(i, (i as i64 * 7) % 20)
            } else {
                s(i, (i as i64 * 5) % 20)
            });
        }
        let probes: Vec<Tuple> = (0..16)
            .map(|i| {
                if i % 2 == 0 {
                    r(100 + i, (i as i64 * 3) % 20)
                } else {
                    s(100 + i, (i as i64 * 11) % 20)
                }
            })
            .collect();
        let mut per_tuple = vec![Vec::new(); probes.len()];
        let mut batched = vec![Vec::new(); probes.len()];
        let mut loop_stats = ProbeStats::default();
        for (i, p) in probes.iter().enumerate() {
            loop_stats += idx.probe(p, &mut |m| per_tuple[i].push(m.seq));
        }
        let batch_stats = idx.probe_batch(&probes, &mut |i, m| batched[i].push(m.seq));
        for (a, b) in per_tuple.iter_mut().zip(batched.iter_mut()) {
            a.sort_unstable();
            b.sort_unstable();
        }
        assert_eq!(per_tuple, batched);
        assert_eq!(loop_stats.matches, batch_stats.matches);
    }

    #[test]
    fn process_stream_batch_matches_sequential_processing() {
        // Mixed-relation batch with intra-batch pairs: bulk processing
        // must produce exactly the pairs sequential probe+insert does.
        let batch: Vec<Tuple> = vec![
            r(0, 5),
            r(1, 6),
            s(2, 5), // pairs with r0
            s(3, 6), // pairs with r1
            r(4, 5), // pairs with s2
            s(5, 5), // pairs with r0 and r4
        ];
        let mut seq_idx = VecIndex::new(Predicate::Equi);
        let mut seq_pairs = Vec::new();
        for t in &batch {
            seq_idx.probe(t, &mut |m| {
                seq_pairs.push((t.seq.min(m.seq), t.seq.max(m.seq)))
            });
            seq_idx.insert(*t);
        }
        let mut bulk_idx = VecIndex::new(Predicate::Equi);
        let mut bulk_pairs = Vec::new();
        let stats = process_stream_batch(&mut bulk_idx, &batch, &mut |i, m| {
            bulk_pairs.push((batch[i].seq.min(m.seq), batch[i].seq.max(m.seq)))
        });
        seq_pairs.sort_unstable();
        bulk_pairs.sort_unstable();
        assert_eq!(seq_pairs, bulk_pairs);
        assert_eq!(stats.matches as usize, bulk_pairs.len());
        assert_eq!(bulk_idx.len(), batch.len());
        assert_eq!(
            seq_pairs,
            vec![(0, 2), (0, 5), (1, 3), (2, 4), (4, 5)],
            "expected exactly the stream-order pairs"
        );
    }

    #[test]
    fn insert_batch_inserts_in_order() {
        let mut idx = VecIndex::new(Predicate::Equi);
        let batch = vec![r(0, 1), s(1, 1), r(2, 2)];
        idx.insert_batch(&batch);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.bytes(), 3 * 64);
    }

    #[test]
    fn sealed_segments_stay_probeable_and_evict_wholesale() {
        let mut idx = VecIndex::new(Predicate::Equi);
        for i in 0..10u64 {
            idx.insert(r(i, 1));
        }
        idx.seal_segment();
        for i in 10..20u64 {
            idx.insert(r(i, 1));
        }
        idx.seal_segment();
        for i in 20..25u64 {
            idx.insert(r(i, 1));
        }
        assert_eq!(idx.sealed_segments(), 2);
        assert_eq!(idx.len(), 25);
        assert_eq!(idx.bytes(), 25 * 64);
        // Probes see sealed + active state.
        assert_eq!(idx.probe_count(&s(100, 1)).matches, 25);
        // Bound 10 drops exactly the first segment (max_seq 9).
        let evicted = idx.evict_before(10);
        assert_eq!(
            evicted,
            EvictStats {
                tuples: 10,
                bytes: 640
            }
        );
        assert_eq!(idx.len(), 15);
        assert_eq!(idx.probe_count(&s(101, 1)).matches, 15);
        // Bound 15 straddles the second segment (max_seq 19): retained.
        assert_eq!(idx.evict_before(15), EvictStats::default());
        assert_eq!(idx.len(), 15);
        // The active run is never evicted by the segment path.
        assert_eq!(idx.evict_before(1000).tuples, 10);
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn drain_and_extract_span_sealed_segments() {
        let mut idx = VecIndex::new(Predicate::Equi);
        idx.insert(r(0, 0));
        idx.insert(s(1, 0));
        idx.seal_segment();
        idx.insert(r(2, 1));
        let pulled = idx.extract(&mut |t| t.seq == 1);
        assert_eq!(pulled.len(), 1);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.bytes(), 2 * 64);
        let all = idx.drain();
        assert_eq!(all.len(), 2);
        assert!(idx.is_empty());
        assert_eq!(idx.bytes(), 0);
        assert_eq!(idx.sealed_segments(), 0);
    }

    #[test]
    fn default_evict_before_falls_back_to_per_tuple() {
        // A minimal unsegmented JoinIndex exercising the trait default.
        struct Flat(VecIndex);
        impl JoinIndex for Flat {
            fn insert(&mut self, t: Tuple) {
                self.0.insert(t);
            }
            fn probe_filtered(
                &mut self,
                t: &Tuple,
                filter: &mut dyn FnMut(&Tuple) -> bool,
                on_match: &mut dyn FnMut(&Tuple),
            ) -> ProbeStats {
                self.0.probe_filtered(t, filter, on_match)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn len_rel(&self, rel: Rel) -> usize {
                self.0.len_rel(rel)
            }
            fn bytes(&self) -> u64 {
                self.0.bytes()
            }
            fn drain(&mut self) -> Vec<Tuple> {
                self.0.drain()
            }
            fn extract(&mut self, pred: &mut dyn FnMut(&Tuple) -> bool) -> Vec<Tuple> {
                self.0.extract(pred)
            }
            fn for_each(&self, f: &mut dyn FnMut(&Tuple)) {
                self.0.for_each(f)
            }
        }
        let mut idx = Flat(VecIndex::new(Predicate::Equi));
        for i in 0..8u64 {
            idx.insert(r(i, 0));
        }
        idx.seal_segment(); // default: no-op
        assert_eq!(idx.sealed_segments(), 0);
        let stats = idx.evict_before(5);
        assert_eq!(
            stats,
            EvictStats {
                tuples: 5,
                bytes: 5 * 64
            }
        );
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn on_match_receives_partners() {
        let mut idx = VecIndex::new(Predicate::Band { width: 1 });
        idx.insert(s(0, 10));
        idx.insert(s(1, 11));
        idx.insert(s(2, 13));
        let mut partners = Vec::new();
        idx.probe(&r(3, 11), &mut |t| partners.push(t.key));
        partners.sort();
        assert_eq!(partners, vec![10, 11]);
    }
}
