//! State lifecycle: windowed eviction and checkpoint/restore.
//!
//! A long-lived session's joiner state is monotone without help: every
//! arriving tuple is stored forever, so an unbounded stream grows the
//! operator without bound and the elastic 4→1 contraction trigger can
//! only ever fire through an artificial hold-off gate. This module adds
//! the two lifecycle mechanisms that fix that:
//!
//! ## Windowed eviction (PanJoin-style partitioned sub-windows)
//!
//! A [`WindowSpec`] bounds how long a stored tuple stays probe-able —
//! by stream distance ([count mode](WindowMode::Count): the last `span`
//! tuples the joiner processed) or by arrival time
//! ([time mode](WindowMode::Time): the last `span` microseconds). The
//! window is partitioned into `sub_windows` **sub-windows**, following
//! PanJoin (arXiv:1811.05065): each sub-window is a closed run of
//! tuples sealed into its own index segment
//! ([`JoinIndex::seal_segment`](crate::index::JoinIndex::seal_segment)),
//! and expiry drops whole sealed segments
//! ([`JoinIndex::evict_before`](crate::index::JoinIndex::evict_before))
//! instead of deleting tuples one by one — O(1) amortised, and no
//! rebuilding of the live index.
//!
//! [`WindowTracker`] is the per-joiner bookkeeper: it decides *when* to
//! seal (the active sub-window's span filled up) and *what* is safely
//! evictable (the monotone [`evict_bound`](WindowTracker::evict_bound)).
//!
//! ### Window semantics
//!
//! Windows are **processing-order** windows, the only sound notion on a
//! stream that reaches a joiner over several FIFO channels with bounded
//! skew: let `L` be the highest sequence number the joiner has
//! processed (its stream clock). The tracker guarantees
//!
//! > a stored tuple `t` is evictable only once `t.seq + span ≤ L`
//! > (count mode; time mode substitutes arrival timestamps),
//!
//! so any probe finds every partner still inside the window of the
//! joiner's own clock. Eviction happens only while the joiner is
//! **stable** (no migration in flight), so Alg. 3's marker-FIFO
//! correctness argument is untouched: the four epoch sets never change
//! under a migration's feet.
//!
//! ## Checkpoint/restore
//!
//! [`Checkpoint`] is a versioned snapshot of everything a quiesced grid
//! session needs to resume: per-joiner live state, the grid/elastic
//! layout, the decision-maker's counters, and the source's ingest
//! cursor + flow-control window. Two on-disk formats exist:
//!
//! * **v2 binary** (the default, [`CheckpointFormat::Binary`]): a
//!   length-prefixed little-endian frame in the same codec convention
//!   as the `aoj-net` wire protocol — compact enough that large joiner
//!   states don't pay text encoding, and embeddable verbatim in a wire
//!   frame ([`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`]).
//! * **v1 text** (`aoj-checkpoint v1`, kept behind
//!   [`CheckpointFormat::Text`]): line-oriented, self-describing and
//!   diff-able — handy for debugging a snapshot by eye.
//!
//! [`Checkpoint::read_from`] sniffs the leading magic and accepts
//! either. Restore semantics (exactly-once match delivery) are
//! implemented by the session layer; this module owns the data model
//! and its (de)serialisation.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufWriter, Write as _};
use std::path::Path;

use crate::decision::DeciderSnapshot;
use crate::elastic::ElasticLayout;
use crate::mapping::{GridAssignment, GridPos, Mapping};
use crate::tuple::{Rel, Tuple};

/// What a window's `span` counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowMode {
    /// Stream distance: a tuple expires once the joiner has processed a
    /// tuple whose sequence number is `span` or more ahead of it.
    Count,
    /// Arrival time: a tuple expires once the joiner processes data that
    /// arrived `span` or more microseconds after it.
    Time,
}

/// Where a time window's clock ticks come from (ignored by count
/// windows, whose ticks are sequence numbers by definition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickSource {
    /// The backend clock at the joiner: wall-clock microseconds on the
    /// threaded/network backends, virtual microseconds on the simulator.
    Arrival,
    /// Real **event time** carried in the tuple's `aux` column,
    /// interpreted as microseconds (negative values clamp to zero). The
    /// stream decides how old a tuple is, not the machine that happens
    /// to process it — the sound notion when replaying historical data
    /// or when ingest lags the source.
    AuxEventTime,
}

/// A per-joiner retention window, partitioned into sub-windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpec {
    /// Count or time semantics.
    pub mode: WindowMode,
    /// Window span: tuples ([`WindowMode::Count`]) or microseconds
    /// ([`WindowMode::Time`]).
    pub span: u64,
    /// Number of sub-windows the span is partitioned into; eviction
    /// granularity is `span / sub_windows`. At least 1.
    pub sub_windows: u32,
    /// Tick extractor for time windows: backend arrival clock (the
    /// default) or event time from the tuple `aux` column.
    pub ticks: TickSource,
}

/// Default sub-window partitioning (PanJoin uses a small constant).
pub const DEFAULT_SUB_WINDOWS: u32 = 8;

impl WindowSpec {
    /// A count window over the last `tuples` sequence numbers.
    pub fn count(tuples: u64) -> WindowSpec {
        WindowSpec {
            mode: WindowMode::Count,
            span: tuples.max(1),
            sub_windows: DEFAULT_SUB_WINDOWS,
            ticks: TickSource::Arrival,
        }
    }

    /// A time window over the last `micros` microseconds of arrivals.
    pub fn time_micros(micros: u64) -> WindowSpec {
        WindowSpec {
            mode: WindowMode::Time,
            span: micros.max(1),
            sub_windows: DEFAULT_SUB_WINDOWS,
            ticks: TickSource::Arrival,
        }
    }

    /// A time window over the last `micros` microseconds of **event
    /// time**, read from the tuple `aux` column
    /// ([`TickSource::AuxEventTime`]).
    pub fn time_event_aux(micros: u64) -> WindowSpec {
        WindowSpec::time_micros(micros).with_aux_event_time()
    }

    /// Override the sub-window count (clamped to at least 1).
    pub fn with_sub_windows(mut self, n: u32) -> WindowSpec {
        self.sub_windows = n.max(1);
        self
    }

    /// Switch a time window's clock to event time from the tuple `aux`
    /// column. Count windows ignore the tick source.
    pub fn with_aux_event_time(mut self) -> WindowSpec {
        self.ticks = TickSource::AuxEventTime;
        self
    }

    /// The window tick for a tuple per this spec's extractor: the
    /// backend arrival clock, or the `aux` column as event-time
    /// microseconds (clamped at zero).
    #[inline]
    pub fn tick_of(&self, arrival_us: u64, aux: i32) -> u64 {
        match self.ticks {
            TickSource::Arrival => arrival_us,
            TickSource::AuxEventTime => aux.max(0) as u64,
        }
    }

    /// The span of one sub-window in the window's tick unit.
    #[inline]
    pub fn sub_span(&self) -> u64 {
        (self.span / self.sub_windows as u64).max(1)
    }
}

/// What one eviction pass removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictStats {
    /// Tuples dropped.
    pub tuples: u64,
    /// Payload bytes dropped.
    pub bytes: u64,
}

impl std::ops::AddAssign for EvictStats {
    fn add_assign(&mut self, rhs: EvictStats) {
        self.tuples += rhs.tuples;
        self.bytes += rhs.bytes;
    }
}

/// A sealed sub-window's summary: the highest sequence number and the
/// highest tick (sequence number or arrival microsecond, per mode) of
/// any tuple inside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SealMark {
    hi_seq: u64,
    hi_tick: u64,
}

/// Live occupancy of one joiner's window (for `SessionHandle::stats()`
/// and the future model-driven controller).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowOccupancy {
    /// Sealed sub-windows currently awaiting expiry.
    pub sealed_sub_windows: usize,
    /// Tick span covered by the active (unsealed) sub-window.
    pub active_span: u64,
}

/// Per-joiner sub-window bookkeeping: decides when the host should seal
/// the live index's active segment, and how far eviction may reach.
///
/// The tracker never touches tuples itself — the host observes each
/// processed tuple, seals the index segment when told to, and passes
/// [`evict_bound`](WindowTracker::evict_bound) to
/// [`JoinIndex::evict_before`](crate::index::JoinIndex::evict_before).
#[derive(Clone, Debug)]
pub struct WindowTracker {
    spec: WindowSpec,
    /// Tick at which the active sub-window opened (None: empty).
    active_start: Option<u64>,
    /// Highest sequence number in the active sub-window.
    active_hi_seq: u64,
    /// Sealed sub-windows, oldest first.
    seals: VecDeque<SealMark>,
    latest_tick: u64,
    latest_seq: u64,
    /// Monotone eviction bound (sequence-number space).
    bound: u64,
}

impl WindowTracker {
    /// An empty tracker for `spec`.
    pub fn new(spec: WindowSpec) -> WindowTracker {
        WindowTracker {
            spec,
            active_start: None,
            active_hi_seq: 0,
            seals: VecDeque::new(),
            latest_tick: 0,
            latest_seq: 0,
            bound: 0,
        }
    }

    /// Rebuild a tracker from a checkpoint: the joiner's restored live
    /// state is treated as one already-sealed sub-window whose tuples
    /// all "arrived" at the checkpoint's clock — conservative (restored
    /// tuples expire no earlier than they would have), never unsafe.
    pub fn restored(
        spec: WindowSpec,
        latest_seq: u64,
        latest_tick: u64,
        restored_hi_seq: Option<u64>,
    ) -> WindowTracker {
        let mut w = WindowTracker::new(spec);
        w.latest_seq = latest_seq;
        w.latest_tick = latest_tick;
        if let Some(hi_seq) = restored_hi_seq {
            w.seals.push_back(SealMark {
                hi_seq,
                hi_tick: latest_tick,
            });
        }
        w
    }

    /// The window specification this tracker enforces.
    #[inline]
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// `(latest_seq, latest_tick)` — the joiner's stream clock.
    #[inline]
    pub fn latest(&self) -> (u64, u64) {
        (self.latest_seq, self.latest_tick)
    }

    /// Record one processed tuple. Returns `true` when the active
    /// sub-window just closed: the host must call
    /// [`JoinIndex::seal_segment`](crate::index::JoinIndex::seal_segment)
    /// on its live index *now*, before observing further tuples.
    pub fn observe(&mut self, seq: u64, now_us: u64) -> bool {
        let tick = match self.spec.mode {
            WindowMode::Count => seq,
            WindowMode::Time => now_us,
        };
        self.latest_seq = self.latest_seq.max(seq);
        self.latest_tick = self.latest_tick.max(tick);
        self.active_hi_seq = self.active_hi_seq.max(seq);
        let start = *self.active_start.get_or_insert(tick);
        if self.latest_tick.saturating_sub(start) + 1 >= self.spec.sub_span() {
            self.seals.push_back(SealMark {
                hi_seq: self.active_hi_seq,
                hi_tick: self.latest_tick,
            });
            self.active_start = None;
            self.active_hi_seq = 0;
            true
        } else {
            false
        }
    }

    /// The current eviction bound: tuples with `seq < bound` are outside
    /// the window of the joiner's stream clock and may be dropped.
    /// Monotone; pops fully-expired seal marks as a side effect.
    ///
    /// Invariant (the safety property the proptests pin): the returned
    /// bound never exceeds `latest_tick − span + 1` translated to
    /// sequence space, so no tuple within `span` of the clock is ever
    /// evictable.
    pub fn evict_bound(&mut self) -> u64 {
        let watermark = self.latest_tick.saturating_sub(self.spec.span);
        while let Some(front) = self.seals.front() {
            if front.hi_tick < watermark {
                self.bound = self.bound.max(front.hi_seq + 1);
                self.seals.pop_front();
            } else {
                break;
            }
        }
        self.bound
    }

    /// Live occupancy for stats reporting.
    pub fn occupancy(&self) -> WindowOccupancy {
        WindowOccupancy {
            sealed_sub_windows: self.seals.len(),
            active_span: self
                .active_start
                .map(|s| self.latest_tick.saturating_sub(s) + 1)
                .unwrap_or(0),
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint model + versioned serialisation
// ---------------------------------------------------------------------

/// Text format magic + version. Bump the version on any layout
/// change; [`Checkpoint::read_from`] rejects anything else.
pub const CHECKPOINT_HEADER: &str = "aoj-checkpoint v1";

/// Binary format magic (first 8 bytes of a v2 snapshot file or of a
/// [`Checkpoint::to_bytes`] image). Deliberately not valid UTF-8 text
/// headers can start with, so format sniffing is unambiguous.
pub const CHECKPOINT_MAGIC_V2: &[u8; 8] = b"AOJCKPT2";

/// Which on-disk encoding [`Checkpoint::write_to_with`] emits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// v2 length-prefixed little-endian binary (the default): compact,
    /// wire-embeddable, cheap to parse.
    #[default]
    Binary,
    /// v1 line-oriented text: human-readable and diff-able.
    Text,
}

/// One joiner's checkpointed state.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinerCheckpoint {
    /// Machine index hosting this joiner.
    pub machine: usize,
    /// Cumulative eviction counters (stats continuity across restore).
    pub evicted_tuples: u64,
    /// Cumulative evicted payload bytes.
    pub evicted_bytes: u64,
    /// The joiner's stream clock: highest processed sequence number.
    pub latest_seq: u64,
    /// The joiner's stream clock in window ticks (equals `latest_seq`
    /// for count windows, an arrival microsecond for time windows).
    pub latest_tick: u64,
    /// The live (τ) tuples, segment structure flattened.
    pub tuples: Vec<Tuple>,
}

/// A complete, versioned snapshot of a quiesced grid session.
///
/// Captured at a migration checkpoint with no reconfiguration in
/// flight: every joiner is stable, the ingest queue is drained, and all
/// matches for tuples before `source_cursor` have been delivered. The
/// restore path (`JoinSession::restore` in `aoj-operators`) rebuilds
/// the topology from this plus the original `SessionBuilder` — config
/// (predicates, cost models) is code, not data, so it is *not*
/// serialised; the fingerprint fields (`j`, `kind`, `seed`) guard
/// against restoring under a mismatched configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Initial joiner count of the session (`SessionBuilder::j`).
    pub j: u32,
    /// Operator kind label ("Dynamic", "StaticMid", ...).
    pub kind: String,
    /// Ticket seed the session ran with.
    pub seed: u64,
    /// The cluster-wide epoch at the quiesced checkpoint.
    pub epoch: u32,
    /// Grid assignment (mapping + machine↔cell bijection).
    pub assign: GridAssignment,
    /// Elastic machine-slot bookkeeping (dormant pool, fresh frontier).
    pub layout: ElasticLayout,
    /// `(expansions_done, contractions_done)` of the elastic control,
    /// when the session ran elastically.
    pub elastic: Option<(u32, u32)>,
    /// The migration decision-maker's committed statistics.
    pub decider: DeciderSnapshot,
    /// The source's ingest cursor: tuples `0..cursor` are fully
    /// processed; the caller resumes pushing from here.
    pub source_cursor: u64,
    /// The source's current flow-control window (tuple copies), after
    /// any elastic grow/shrink rescaling.
    pub window_copies: u64,
    /// Per-joiner state for every **active** machine, ascending by
    /// machine index.
    pub joiners: Vec<JoinerCheckpoint>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> io::Result<T> {
    tok.ok_or_else(|| bad(format!("checkpoint: missing {what}")))?
        .parse::<T>()
        .map_err(|_| bad(format!("checkpoint: malformed {what}")))
}

// Binary body primitives. The outer frame (magic + u32 LE body
// length) matches the aoj-net wire codec convention; inside the body,
// integers are LEB128 varints and signed values are zigzag-folded, so
// a checkpoint full of small sequence numbers is *smaller* than its
// decimal text rendering, not 8 bytes a field. (aoj-core stays
// dependency-free, so the few lines live here rather than being
// imported.)

fn put_var(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_ivar(out: &mut Vec<u8>, v: i64) {
    put_var(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_var(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over a binary checkpoint body.
struct Bin<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Bin<'_> {
    fn take(&mut self, n: usize, what: &str) -> io::Result<&[u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad(format!("checkpoint: truncated binary {what}")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn var(&mut self, what: &str) -> io::Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8(what)?;
            if shift >= 64 {
                return Err(bad(format!("checkpoint: overlong varint {what}")));
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn ivar(&mut self, what: &str) -> io::Result<i64> {
        let z = self.var(what)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn str(&mut self, what: &str) -> io::Result<String> {
        let n = self.var(what)? as usize;
        let raw = self.take(n, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| bad(format!("checkpoint: non-UTF-8 {what}")))
    }
}

impl Checkpoint {
    /// Serialise to `path` in the default format (v2 binary).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        self.write_to_with(path, CheckpointFormat::default())
    }

    /// Serialise to `path` in an explicit format: the v2 binary frame
    /// ([`Checkpoint::to_bytes`]) or the readable v1 text layout:
    ///
    /// ```text
    /// aoj-checkpoint v1
    /// session <j> <kind> <seed>
    /// epoch <epoch>
    /// mapping <n> <m>
    /// pos <slots> <row> <col> ...          # per machine slot
    /// cells <cells> <machine> ...          # row-major grid cells
    /// layout <next_fresh> <k> <dormant> ...
    /// elastic <expansions> <contractions>  # omitted if not elastic
    /// decider <r> <s> <dr> <ds> <decisions> <migrations>
    /// source <cursor> <window_copies>
    /// joiner <machine> <evicted_tuples> <evicted_bytes> <latest_seq> <latest_tick> <n>
    /// t <seq> <rel> <key> <aux> <bytes> <ticket>   # n of these
    /// end
    /// ```
    pub fn write_to_with(&self, path: &Path, format: CheckpointFormat) -> io::Result<()> {
        match format {
            CheckpointFormat::Binary => std::fs::write(path, self.to_bytes()),
            CheckpointFormat::Text => self.write_text(path),
        }
    }

    fn write_text(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "{CHECKPOINT_HEADER}")?;
        writeln!(w, "session {} {} {}", self.j, self.kind, self.seed)?;
        writeln!(w, "epoch {}", self.epoch)?;
        let mapping = self.assign.mapping();
        writeln!(w, "mapping {} {}", mapping.n, mapping.m)?;
        let pos = self.assign.pos_slice();
        write!(w, "pos {}", pos.len())?;
        for p in pos {
            write!(w, " {} {}", p.row, p.col)?;
        }
        writeln!(w)?;
        let cells: Vec<usize> = self.assign.machines().collect();
        write!(w, "cells {}", cells.len())?;
        for m in &cells {
            write!(w, " {m}")?;
        }
        writeln!(w)?;
        write!(
            w,
            "layout {} {}",
            self.layout.high_water(),
            self.layout.dormant().len()
        )?;
        for d in self.layout.dormant() {
            write!(w, " {d}")?;
        }
        writeln!(w)?;
        if let Some((e, c)) = self.elastic {
            writeln!(w, "elastic {e} {c}")?;
        }
        let d = &self.decider;
        writeln!(
            w,
            "decider {} {} {} {} {} {}",
            d.r, d.s, d.dr, d.ds, d.decisions, d.migrations
        )?;
        writeln!(w, "source {} {}", self.source_cursor, self.window_copies)?;
        for j in &self.joiners {
            writeln!(
                w,
                "joiner {} {} {} {} {} {}",
                j.machine,
                j.evicted_tuples,
                j.evicted_bytes,
                j.latest_seq,
                j.latest_tick,
                j.tuples.len()
            )?;
            for t in &j.tuples {
                writeln!(
                    w,
                    "t {} {} {} {} {} {}",
                    t.seq,
                    match t.rel {
                        Rel::R => "R",
                        Rel::S => "S",
                    },
                    t.key,
                    t.aux,
                    t.bytes,
                    t.ticket
                )?;
            }
        }
        writeln!(w, "end")?;
        w.flush()
    }

    /// Encode as a self-contained v2 binary image: the 8-byte magic, a
    /// little-endian `u32` body length, then the length-prefixed body —
    /// the same codec convention as the `aoj-net` wire frames, so a
    /// snapshot can ride inside one without re-encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.joiners.len() * 64);
        put_var(&mut body, self.j as u64);
        put_str(&mut body, &self.kind);
        put_var(&mut body, self.seed);
        put_var(&mut body, self.epoch as u64);
        let mapping = self.assign.mapping();
        put_var(&mut body, mapping.n as u64);
        put_var(&mut body, mapping.m as u64);
        let pos = self.assign.pos_slice();
        put_var(&mut body, pos.len() as u64);
        for p in pos {
            put_var(&mut body, p.row as u64);
            put_var(&mut body, p.col as u64);
        }
        let cells: Vec<usize> = self.assign.machines().collect();
        put_var(&mut body, cells.len() as u64);
        for m in &cells {
            put_var(&mut body, *m as u64);
        }
        put_var(&mut body, self.layout.high_water() as u64);
        put_var(&mut body, self.layout.dormant().len() as u64);
        for d in self.layout.dormant() {
            put_var(&mut body, *d as u64);
        }
        match self.elastic {
            Some((e, c)) => {
                body.push(1);
                put_var(&mut body, e as u64);
                put_var(&mut body, c as u64);
            }
            None => body.push(0),
        }
        let d = &self.decider;
        for v in [d.r, d.s, d.dr, d.ds, d.decisions, d.migrations] {
            put_var(&mut body, v);
        }
        put_var(&mut body, self.source_cursor);
        put_var(&mut body, self.window_copies);
        put_var(&mut body, self.joiners.len() as u64);
        for j in &self.joiners {
            put_var(&mut body, j.machine as u64);
            put_var(&mut body, j.evicted_tuples);
            put_var(&mut body, j.evicted_bytes);
            put_var(&mut body, j.latest_seq);
            put_var(&mut body, j.latest_tick);
            put_var(&mut body, j.tuples.len() as u64);
            for t in &j.tuples {
                put_var(&mut body, t.seq);
                body.push(match t.rel {
                    Rel::R => 0,
                    Rel::S => 1,
                });
                put_ivar(&mut body, t.key);
                put_ivar(&mut body, t.aux as i64);
                put_var(&mut body, t.bytes as u64);
                put_var(&mut body, t.ticket);
            }
        }
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(CHECKPOINT_MAGIC_V2);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a v2 binary image produced by [`Checkpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Checkpoint> {
        if bytes.len() < 12 || &bytes[..8] != CHECKPOINT_MAGIC_V2 {
            return Err(bad("checkpoint: missing v2 binary magic"));
        }
        let body_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let body = &bytes[12..];
        if body.len() != body_len {
            return Err(bad(format!(
                "checkpoint: binary frame length mismatch (header {body_len}, have {})",
                body.len()
            )));
        }
        let mut b = Bin { buf: body, pos: 0 };
        let j = b.var("j")? as u32;
        let kind = b.str("kind")?;
        let seed = b.var("seed")?;
        let epoch = b.var("epoch")? as u32;
        let n = b.var("mapping n")? as u32;
        let m = b.var("mapping m")? as u32;
        let mapping = Mapping::new(n, m);
        let pos: Vec<GridPos> = (0..b.var("pos count")?)
            .map(|_| {
                Ok(GridPos {
                    row: b.var("pos row")? as u32,
                    col: b.var("pos col")? as u32,
                })
            })
            .collect::<io::Result<_>>()?;
        let cells: Vec<u32> = (0..b.var("cell count")?)
            .map(|_| Ok(b.var("cell machine")? as u32))
            .collect::<io::Result<_>>()?;
        let next_fresh = b.var("layout next_fresh")? as usize;
        let dormant: Vec<usize> = (0..b.var("layout dormant count")?)
            .map(|_| Ok(b.var("layout dormant")? as usize))
            .collect::<io::Result<_>>()?;
        let layout = ElasticLayout::from_parts(next_fresh, dormant);
        let elastic = match b.u8("elastic flag")? {
            0 => None,
            1 => Some((b.var("expansions")? as u32, b.var("contractions")? as u32)),
            other => return Err(bad(format!("checkpoint: bad elastic flag {other}"))),
        };
        let decider = DeciderSnapshot {
            r: b.var("decider r")?,
            s: b.var("decider s")?,
            dr: b.var("decider dr")?,
            ds: b.var("decider ds")?,
            decisions: b.var("decider decisions")?,
            migrations: b.var("decider migrations")?,
        };
        let source_cursor = b.var("source cursor")?;
        let window_copies = b.var("window copies")?;
        let joiners: Vec<JoinerCheckpoint> = (0..b.var("joiner count")?)
            .map(|_| {
                let machine = b.var("joiner machine")? as usize;
                let evicted_tuples = b.var("evicted tuples")?;
                let evicted_bytes = b.var("evicted bytes")?;
                let latest_seq = b.var("latest seq")?;
                let latest_tick = b.var("latest tick")?;
                let tuples: Vec<Tuple> = (0..b.var("tuple count")?)
                    .map(|_| {
                        Ok(Tuple {
                            seq: b.var("tuple seq")?,
                            rel: match b.u8("tuple rel")? {
                                0 => Rel::R,
                                1 => Rel::S,
                                other => {
                                    return Err(bad(format!("checkpoint: bad relation {other}")))
                                }
                            },
                            key: b.ivar("tuple key")?,
                            aux: b.ivar("tuple aux")? as i32,
                            bytes: b.var("tuple bytes")? as u32,
                            ticket: b.var("tuple ticket")?,
                        })
                    })
                    .collect::<io::Result<_>>()?;
                Ok(JoinerCheckpoint {
                    machine,
                    evicted_tuples,
                    evicted_bytes,
                    latest_seq,
                    latest_tick,
                    tuples,
                })
            })
            .collect::<io::Result<_>>()?;
        if b.pos != body.len() {
            return Err(bad(format!(
                "checkpoint: {} trailing bytes after binary body",
                body.len() - b.pos
            )));
        }
        let assign = GridAssignment::from_parts(mapping, pos, cells)
            .map_err(|e| bad(format!("checkpoint: {e}")))?;
        Ok(Checkpoint {
            j,
            kind,
            seed,
            epoch,
            assign,
            layout,
            elastic,
            decider,
            source_cursor,
            window_copies,
            joiners,
        })
    }

    /// Read and validate a checkpoint in either format: the leading
    /// magic decides (v2 binary [`CHECKPOINT_MAGIC_V2`] vs v1 text
    /// [`CHECKPOINT_HEADER`]).
    pub fn read_from(path: &Path) -> io::Result<Checkpoint> {
        let bytes = std::fs::read(path)?;
        if bytes.starts_with(CHECKPOINT_MAGIC_V2) {
            Checkpoint::from_bytes(&bytes)
        } else {
            Checkpoint::read_text(&bytes[..])
        }
    }

    fn read_text(r: impl BufRead) -> io::Result<Checkpoint> {
        let mut lines = r.lines();
        let mut next = || -> io::Result<String> {
            lines
                .next()
                .ok_or_else(|| bad("checkpoint: truncated file"))?
        };
        let header = next()?;
        if header.trim() != CHECKPOINT_HEADER {
            return Err(bad(format!(
                "checkpoint: unsupported header {header:?} (want {CHECKPOINT_HEADER:?})"
            )));
        }
        let mut j = 0u32;
        let mut kind = String::new();
        let mut seed = 0u64;
        let mut epoch = 0u32;
        let mut mapping: Option<Mapping> = None;
        let mut pos: Vec<GridPos> = Vec::new();
        let mut cells: Vec<u32> = Vec::new();
        let mut layout = ElasticLayout::new(0);
        let mut elastic = None;
        let mut decider = DeciderSnapshot::default();
        let mut source_cursor = 0u64;
        let mut window_copies = 0u64;
        let mut joiners: Vec<JoinerCheckpoint> = Vec::new();
        loop {
            let line = next()?;
            let mut tok = line.split_whitespace();
            match tok.next() {
                None => continue,
                Some("session") => {
                    j = parse(tok.next(), "j")?;
                    kind = tok
                        .next()
                        .ok_or_else(|| bad("checkpoint: missing kind"))?
                        .to_string();
                    seed = parse(tok.next(), "seed")?;
                }
                Some("epoch") => epoch = parse(tok.next(), "epoch")?,
                Some("mapping") => {
                    let n: u32 = parse(tok.next(), "mapping n")?;
                    let m: u32 = parse(tok.next(), "mapping m")?;
                    mapping = Some(Mapping::new(n, m));
                }
                Some("pos") => {
                    let k: usize = parse(tok.next(), "pos count")?;
                    pos = (0..k)
                        .map(|_| {
                            Ok(GridPos {
                                row: parse(tok.next(), "pos row")?,
                                col: parse(tok.next(), "pos col")?,
                            })
                        })
                        .collect::<io::Result<_>>()?;
                }
                Some("cells") => {
                    let k: usize = parse(tok.next(), "cell count")?;
                    cells = (0..k)
                        .map(|_| parse(tok.next(), "cell machine"))
                        .collect::<io::Result<_>>()?;
                }
                Some("layout") => {
                    let next_fresh: usize = parse(tok.next(), "layout next_fresh")?;
                    let k: usize = parse(tok.next(), "layout dormant count")?;
                    let dormant: Vec<usize> = (0..k)
                        .map(|_| parse(tok.next(), "layout dormant"))
                        .collect::<io::Result<_>>()?;
                    layout = ElasticLayout::from_parts(next_fresh, dormant);
                }
                Some("elastic") => {
                    elastic = Some((
                        parse(tok.next(), "expansions")?,
                        parse(tok.next(), "contractions")?,
                    ));
                }
                Some("decider") => {
                    decider = DeciderSnapshot {
                        r: parse(tok.next(), "decider r")?,
                        s: parse(tok.next(), "decider s")?,
                        dr: parse(tok.next(), "decider dr")?,
                        ds: parse(tok.next(), "decider ds")?,
                        decisions: parse(tok.next(), "decider decisions")?,
                        migrations: parse(tok.next(), "decider migrations")?,
                    };
                }
                Some("source") => {
                    source_cursor = parse(tok.next(), "source cursor")?;
                    window_copies = parse(tok.next(), "window copies")?;
                }
                Some("joiner") => {
                    let machine: usize = parse(tok.next(), "joiner machine")?;
                    let evicted_tuples: u64 = parse(tok.next(), "evicted tuples")?;
                    let evicted_bytes: u64 = parse(tok.next(), "evicted bytes")?;
                    let latest_seq: u64 = parse(tok.next(), "latest seq")?;
                    let latest_tick: u64 = parse(tok.next(), "latest tick")?;
                    let n: usize = parse(tok.next(), "tuple count")?;
                    let mut tuples = Vec::with_capacity(n);
                    for _ in 0..n {
                        let tl = next()?;
                        let mut tt = tl.split_whitespace();
                        if tt.next() != Some("t") {
                            return Err(bad("checkpoint: expected tuple line"));
                        }
                        let seq: u64 = parse(tt.next(), "tuple seq")?;
                        let rel = match tt.next() {
                            Some("R") => Rel::R,
                            Some("S") => Rel::S,
                            other => {
                                return Err(bad(format!("checkpoint: bad relation {other:?}")))
                            }
                        };
                        let key: i64 = parse(tt.next(), "tuple key")?;
                        let aux: i32 = parse(tt.next(), "tuple aux")?;
                        let bytes: u32 = parse(tt.next(), "tuple bytes")?;
                        let ticket: u64 = parse(tt.next(), "tuple ticket")?;
                        tuples.push(Tuple {
                            seq,
                            rel,
                            key,
                            aux,
                            bytes,
                            ticket,
                        });
                    }
                    joiners.push(JoinerCheckpoint {
                        machine,
                        evicted_tuples,
                        evicted_bytes,
                        latest_seq,
                        latest_tick,
                        tuples,
                    });
                }
                Some("end") => break,
                Some(other) => return Err(bad(format!("checkpoint: unknown record {other:?}"))),
            }
        }
        let mapping = mapping.ok_or_else(|| bad("checkpoint: missing mapping"))?;
        let assign = GridAssignment::from_parts(mapping, pos, cells)
            .map_err(|e| bad(format!("checkpoint: {e}")))?;
        Ok(Checkpoint {
            j,
            kind,
            seed,
            epoch,
            assign,
            layout,
            elastic,
            decider,
            source_cursor,
            window_copies,
            joiners,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_window_seals_at_sub_span() {
        let spec = WindowSpec::count(80).with_sub_windows(8); // sub_span 10
        let mut w = WindowTracker::new(spec);
        let mut seals = 0;
        for seq in 0..100u64 {
            if w.observe(seq, 0) {
                seals += 1;
            }
        }
        assert_eq!(seals, 10, "100 tuples / sub_span 10");
        assert_eq!(w.latest(), (99, 99));
    }

    #[test]
    fn evict_bound_respects_window_span() {
        let spec = WindowSpec::count(40).with_sub_windows(4); // sub_span 10
        let mut w = WindowTracker::new(spec);
        for seq in 0..100u64 {
            w.observe(seq, 0);
            let bound = w.evict_bound();
            // Safety: nothing within `span` of the clock is evictable.
            assert!(
                bound <= (seq + 1).saturating_sub(spec.span),
                "bound {bound} too aggressive at clock {seq}"
            );
        }
        // Liveness: after 100 tuples with a 40-window partitioned in
        // 10s, everything below 50 has expired (sealed segments with
        // hi_seq 49 and below are behind the watermark 59).
        assert!(w.evict_bound() >= 50, "bound {} stalled", w.evict_bound());
    }

    #[test]
    fn evict_bound_is_monotone_under_reordering() {
        let spec = WindowSpec::count(20).with_sub_windows(4);
        let mut w = WindowTracker::new(spec);
        let mut last = 0;
        // Mildly out-of-order stream (bounded skew, like FIFO channels
        // from multiple reshufflers).
        for i in 0..200u64 {
            let seq = if i % 7 == 3 { i.saturating_sub(3) } else { i };
            w.observe(seq, 0);
            let b = w.evict_bound();
            assert!(b >= last, "bound went backwards");
            assert!(b <= (w.latest().0 + 1).saturating_sub(spec.span));
            last = b;
        }
        assert!(last > 0);
    }

    #[test]
    fn time_window_uses_arrival_ticks() {
        let spec = WindowSpec::time_micros(1000).with_sub_windows(4); // sub_span 250
        let mut w = WindowTracker::new(spec);
        // 10 tuples per 100us step.
        for i in 0..100u64 {
            w.observe(i, i * 100);
        }
        let bound = w.evict_bound();
        // Clock is at 9900us; watermark 8900us; tuples sealed with
        // hi_tick < 8900 have seq <= ~88.
        assert!(bound > 0, "time window never evicted");
        assert!(bound <= 90, "evicted inside the window");
    }

    #[test]
    fn aux_event_time_extractor_drives_time_windows() {
        let spec = WindowSpec::time_event_aux(1000).with_sub_windows(4);
        assert_eq!(spec.mode, WindowMode::Time);
        assert_eq!(spec.ticks, TickSource::AuxEventTime);
        // The extractor ignores the arrival clock and reads `aux`
        // (negative event times clamp to zero, never panic).
        assert_eq!(spec.tick_of(77, 4200), 4200);
        assert_eq!(spec.tick_of(77, -5), 0);
        assert_eq!(WindowSpec::time_micros(1000).tick_of(77, 4200), 77);
        // Driving a tracker with aux ticks: stalled arrival time, fast
        // event time — eviction follows the event clock.
        let mut w = WindowTracker::new(spec);
        for i in 0..100u64 {
            let tick = spec.tick_of(0, (i * 100) as i32);
            w.observe(i, tick);
        }
        let bound = w.evict_bound();
        assert!(bound > 0, "event-time window never evicted");
        assert!(bound <= 90, "evicted inside the event-time window");
    }

    #[test]
    fn restored_tracker_is_conservative() {
        let spec = WindowSpec::count(50);
        let mut w = WindowTracker::restored(spec, 200, 200, Some(199));
        // Right after restore nothing has expired (hi_tick == clock).
        assert_eq!(w.evict_bound(), 0);
        // Once the clock moves past hi_tick + span, the restored
        // segment expires wholesale (later live sub-windows may have
        // expired too — the bound just must cover the restored one and
        // stay inside the safety envelope).
        for seq in 201..=260u64 {
            w.observe(seq, 0);
        }
        let bound = w.evict_bound();
        assert!(bound >= 200, "restored segment never expired");
        assert!(bound <= (260 + 1u64).saturating_sub(spec.span));
    }

    fn sample_checkpoint() -> Checkpoint {
        let assign = GridAssignment::initial(Mapping::new(2, 2));
        Checkpoint {
            j: 4,
            kind: "Dynamic".to_string(),
            seed: 0x5EED,
            epoch: 3,
            assign,
            layout: ElasticLayout::from_parts(7, vec![4, 5]),
            elastic: Some((1, 1)),
            decider: DeciderSnapshot {
                r: 10,
                s: 20,
                dr: 1,
                ds: 2,
                decisions: 5,
                migrations: 2,
            },
            source_cursor: 1234,
            window_copies: 256,
            joiners: vec![JoinerCheckpoint {
                machine: 0,
                evicted_tuples: 9,
                evicted_bytes: 576,
                latest_seq: 1200,
                latest_tick: 1200,
                tuples: vec![
                    Tuple::new(Rel::R, 1, -5, 42).with_aux(-3),
                    Tuple::new(Rel::S, 2, 7, u64::MAX).with_bytes(100),
                ],
            }],
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_disk_in_both_formats() {
        let ck = sample_checkpoint();
        let dir = std::env::temp_dir().join("aoj-lifecycle-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, format) in [
            ("roundtrip-bin.ckpt", CheckpointFormat::Binary),
            ("roundtrip-txt.ckpt", CheckpointFormat::Text),
        ] {
            let path = dir.join(name);
            ck.write_to_with(&path, format).unwrap();
            // read_from sniffs the format from the leading magic.
            let back = Checkpoint::read_from(&path).unwrap();
            assert_eq!(ck, back, "{format:?} round-trip");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn binary_checkpoint_roundtrips_in_memory_and_is_compact() {
        let mut ck = sample_checkpoint();
        // Negative keys/aux and a large state must survive the cast
        // round-trip, and the binary image must actually be smaller
        // than the text rendering (the point of the format).
        for seq in 0..500u64 {
            ck.joiners[0]
                .tuples
                .push(Tuple::new(Rel::R, seq, seq as i64 - 250, seq).with_aux(-(seq as i32)));
        }
        let bytes = ck.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes).unwrap(), ck);
        let dir = std::env::temp_dir().join("aoj-lifecycle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.ckpt");
        ck.write_to_with(&path, CheckpointFormat::Text).unwrap();
        let text_len = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_file(&path).ok();
        assert!(
            (bytes.len() as u64) < text_len,
            "binary {} >= text {text_len}",
            bytes.len()
        );
    }

    #[test]
    fn binary_checkpoint_rejects_corruption() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        // Truncated body.
        let err = Checkpoint::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF;
        let err = Checkpoint::from_bytes(&wrong).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Trailing garbage past the declared body.
        let mut long = bytes.clone();
        long.push(0);
        let err = Checkpoint::from_bytes(&long).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn checkpoint_rejects_wrong_version() {
        let dir = std::env::temp_dir().join("aoj-lifecycle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("badversion.ckpt");
        std::fs::write(&path, "aoj-checkpoint v999\nend\n").unwrap();
        let err = Checkpoint::read_from(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
