//! Arbitrary cluster sizes via power-of-two group decomposition (§4.2.2).
//!
//! `J` decomposes uniquely into a sum of powers of two (its binary
//! representation). Machines split into one independent group per summand,
//! each running the grid scheme of §3.4 on its own. An incoming tuple is
//! **probed** against every group (it must meet all stored tuples) but
//! **stored** in exactly one, chosen with probability `J_g / J` via a
//! pseudo-random hash — so expected storage is proportional to group size
//! and every joiner still performs `1/J` of the join work.
//!
//! The paper shows the storage competitive ratio at most doubles (3.75)
//! because the largest group holds at least half the machines, and routing
//! cost gains a `log J` factor (at most `⌈log J⌉` groups).

use crate::ilf::{effective_cardinalities, optimal_mapping};
use crate::mapping::Mapping;

/// The power-of-two decomposition of a cluster of `J` machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSet {
    /// Group sizes, descending powers of two (binary digits of `J`).
    sizes: Vec<u32>,
    /// First machine index of each group (prefix sums of `sizes`).
    offsets: Vec<u32>,
    total: u32,
}

impl GroupSet {
    /// Decompose `j ≥ 1` machines into groups.
    pub fn decompose(j: u32) -> GroupSet {
        assert!(j >= 1);
        let mut sizes = Vec::new();
        let mut bit = 31 - j.leading_zeros();
        loop {
            if j & (1 << bit) != 0 {
                sizes.push(1 << bit);
            }
            if bit == 0 {
                break;
            }
            bit -= 1;
        }
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        GroupSet {
            sizes,
            offsets,
            total: j,
        }
    }

    /// Number of groups (`≤ ⌈log₂ J⌉ + 1`, i.e. the popcount of `J`).
    #[inline]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Total machines.
    #[inline]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Size of group `g`.
    #[inline]
    pub fn size(&self, g: usize) -> u32 {
        self.sizes[g]
    }

    /// Machine index range `[offset, offset + size)` of group `g`.
    pub fn machine_range(&self, g: usize) -> std::ops::Range<usize> {
        let o = self.offsets[g] as usize;
        o..o + self.sizes[g] as usize
    }

    /// The group that stores a tuple with (independent) hash `h`: group `g`
    /// with probability `J_g / J` — ranges proportional to sizes.
    pub fn storage_group(&self, h: u64) -> usize {
        let slot = (h % self.total as u64) as u32;
        // Linear scan: at most popcount(J) ≤ 32 groups, usually ≤ 3.
        let mut acc = 0;
        for (g, &s) in self.sizes.iter().enumerate() {
            acc += s;
            if slot < acc {
                return g;
            }
        }
        unreachable!("slot < total by construction")
    }

    /// Optimal per-group mappings for estimated cardinalities: each group
    /// independently minimises its ILF (the optimal `n/m` ratio is the same
    /// for all groups, so the grids nest — larger groups refine smaller
    /// ones, the property the forwarding chains of §4.2.2 rely on).
    pub fn optimal_mappings(&self, r: u64, s: u64) -> Vec<Mapping> {
        self.sizes
            .iter()
            .map(|&jg| {
                let (re, se) = effective_cardinalities(jg, r, s);
                optimal_mapping(jg, re, se)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::mix64;

    #[test]
    fn decompose_matches_binary_digits() {
        let g = GroupSet::decompose(22);
        assert_eq!(g.count(), 3);
        assert_eq!((g.size(0), g.size(1), g.size(2)), (16, 4, 2));
        assert_eq!(g.machine_range(0), 0..16);
        assert_eq!(g.machine_range(1), 16..20);
        assert_eq!(g.machine_range(2), 20..22);
        assert_eq!(g.total(), 22);
    }

    #[test]
    fn power_of_two_is_single_group() {
        let g = GroupSet::decompose(64);
        assert_eq!(g.count(), 1);
        assert_eq!(g.size(0), 64);
    }

    #[test]
    fn one_machine() {
        let g = GroupSet::decompose(1);
        assert_eq!(g.count(), 1);
        assert_eq!(g.machine_range(0), 0..1);
        assert_eq!(g.storage_group(u64::MAX), 0);
    }

    #[test]
    fn storage_probability_is_proportional_to_size() {
        let g = GroupSet::decompose(20); // 16 + 4
        let n = 400_000u64;
        let mut counts = vec![0u64; g.count()];
        for i in 0..n {
            counts[g.storage_group(mix64(i))] += 1;
        }
        let p0 = counts[0] as f64 / n as f64;
        let p1 = counts[1] as f64 / n as f64;
        assert!((p0 - 0.8).abs() < 0.01, "group 0 share {p0}");
        assert!((p1 - 0.2).abs() < 0.01, "group 1 share {p1}");
    }

    #[test]
    fn per_group_mappings_nest() {
        // For any cardinalities, the larger group's (n, m) must be a
        // refinement of the smaller's: n_small | n_big and m_small | m_big.
        let g = GroupSet::decompose(20); // 16 + 4
        for (r, s) in [(1000u64, 1000u64), (100, 6400), (6400, 100), (1, 1)] {
            let maps = g.optimal_mappings(r, s);
            let (big, small) = (maps[0], maps[1]);
            assert_eq!(big.n % small.n, 0, "rows must nest for ({r},{s}): {maps:?}");
            assert_eq!(big.m % small.m, 0, "cols must nest for ({r},{s}): {maps:?}");
        }
    }

    #[test]
    fn join_work_is_uniform_across_all_machines() {
        // The §4.2.2 argument: P[joiner computes a given pair] = 1/J.
        // Simulate: for each (r, s) pair, r is stored in group g_r at row
        // row(r); s probes all groups. The pair is evaluated at the single
        // machine (row_g(r), col_g(s)) of g_r. Count evaluations per
        // machine over many pairs.
        use crate::ticket::partition;
        let j = 20u32;
        let g = GroupSet::decompose(j);
        let maps = g.optimal_mappings(1, 1); // (4,4) and (2,2)
        let n_pairs = 600_000u64;
        let mut work = vec![0u64; j as usize];
        for i in 0..n_pairs {
            let r_hash = mix64(i * 2 + 1);
            let r_ticket = mix64(i * 7 + 3);
            let s_ticket = mix64(i * 13 + 5);
            let gr = g.storage_group(r_hash);
            let mp = maps[gr];
            let row = partition(r_ticket, mp.n);
            let col = partition(s_ticket, mp.m);
            let machine = g.machine_range(gr).start + (row * mp.m + col) as usize;
            work[machine] += 1;
        }
        let expected = n_pairs as f64 / j as f64;
        for (k, w) in work.iter().enumerate() {
            let dev = (*w as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "machine {k} work deviates {dev:.3}");
        }
    }
}
