//! # aoj-core — the adaptive online join operator, distilled
//!
//! This crate implements the algorithmic contribution of *Scalable and
//! Adaptive Online Joins* (ElSeidy, Elguindy, Vitorovic, Koch — PVLDB 7(6),
//! 2014) as pure, dependency-free logic. The dataflow wiring lives in
//! `aoj-operators`; everything provable lives here, next to tests that
//! check the paper's lemmas and theorems:
//!
//! | paper | module |
//! |---|---|
//! | §3.1–3.4 join matrix, grid `(n,m)`-mapping, Theorem 3.2 | [`mapping`], [`mod@ilf`] |
//! | §3.2 content-insensitive routing | [`ticket`] (nested random partitions) |
//! | Alg. 1 decentralised statistics | [`stats`] |
//! | Alg. 2, Lemmas 4.1–4.3, Theorem 4.2 (ε trade-off) | [`decision`] |
//! | Lemma 4.4 locality-aware migration, Fig. 3 | [`migration`], [`mapping`] |
//! | Alg. 3 epochs, Lemma 4.6, Theorem 4.5 | [`epoch`] |
//! | §4.2.2 arbitrary `J` via group decomposition | [`groups`] |
//! | §4.2.2 elasticity, Fig. 5, Theorem 4.3 | [`elastic`] |
//! | §5.4 `ILF/ILF*` instrumentation (Fig. 8c) | [`competitive`] |
//!
//! Beyond the paper, [`sketch`] adds mergeable streaming summaries
//! (SpaceSaving heavy hitters + t-digest load quantiles) that make the
//! routing and elasticity layers skew-aware — a capability the original
//! operator lacked — and [`fault`] adds the deterministic
//! fault-injection plan, failure detector, and recovery bookkeeping
//! behind the self-healing session layer.
//!
//! The local join algorithm is pluggable through [`index::JoinIndex`]
//! (§3.2: "any flavor of non-blocking join algorithm can be independently
//! adopted at each joiner task"); `aoj-joinalg` ships hash, B-tree and
//! nested-loop implementations.

pub mod competitive;
pub mod decision;
pub mod elastic;
pub mod epoch;
pub mod fault;
pub mod groups;
pub mod ilf;
pub mod index;
pub mod lifecycle;
pub mod mapping;
pub mod migration;
pub mod predicate;
pub mod sketch;
pub mod stats;
pub mod ticket;
pub mod tuple;

pub use competitive::CompetitiveTracker;
pub use decision::{DeciderSnapshot, Decision, DecisionConfig, MigrationDecider};
pub use epoch::{DataOutcome, Epoch, EpochJoiner, FinalizeSummary, SignalOutcome};
pub use fault::{
    DeathCause, DetectorConfig, FailureDetector, FaultInjection, FaultLog, FaultPlan, FaultTrigger,
    RecoveryStats, WorkerDeath,
};
pub use ilf::{ilf, optimal_ilf, optimal_mapping};
pub use index::{JoinIndex, ProbeStats, VecIndex};
pub use lifecycle::{
    Checkpoint, CheckpointFormat, EvictStats, JoinerCheckpoint, TickSource, WindowMode,
    WindowOccupancy, WindowSpec, WindowTracker,
};
pub use mapping::{GridAssignment, GridPos, Mapping, Step};
pub use migration::{plan_step, MachineStepSpec, MigrationPlan, StateClass};
pub use predicate::Predicate;
pub use sketch::{HeavyHitter, SkewConfig, SkewRel, SkewSketch, SpaceSaving, TDigest};
pub use ticket::RoutingMode;
pub use tuple::{Rel, Tuple};
