//! Streaming sketches for skew detection: a mergeable SpaceSaving
//! heavy-hitter summary and a t-digest over per-key load.
//!
//! The reshufflers cannot afford exact per-key accounting — the key domain
//! is unbounded and the paper's migration trigger (Alg. 2) only sees total
//! stored bytes, which is blind to skew. This module provides the two
//! fixed-size summaries that replace exact accounting:
//!
//! * [`SpaceSaving`] (Metwally et al.) tracks the top-`k` keys by routed
//!   bytes with a hard error bound: every key whose true weight exceeds
//!   `N/k` is tracked, and no estimate overshoots the truth by more than
//!   `N/k`. The reshuffler consults it on every routed tuple to decide
//!   whether a key is *hot* and must be split across the joiner grid.
//! * [`TDigest`] summarises the distribution of per-key load so the
//!   elasticity triggers can compare tail against median (`p99 / p50`) —
//!   a scale-free skew signal that fires even when total bytes look small.
//!
//! Both summaries merge **deterministically**: merging the per-shard
//! sketches of a threaded or TCP run yields the same summary regardless
//! of machine interleaving, the same way `SharedGauges` snapshots combine.
//! [`SkewSketch`] bundles one SpaceSaving per relation with a shared
//! t-digest and carries a flat `Vec<u64>` wire form (`to_parts` /
//! `from_parts`) so shards can ride the existing gauge-sample frames.

use std::collections::HashMap;

/// One tracked heavy-hitter: the key, its estimated weight, and the
/// maximum overestimation error baked into that estimate.
///
/// The true weight `w` of `key` satisfies `estimate - err <= w <= estimate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The tracked key.
    pub key: i64,
    /// Estimated total weight routed for this key (upper bound on truth).
    pub estimate: u64,
    /// Maximum overestimation: `estimate - err` lower-bounds the truth.
    pub err: u64,
}

#[derive(Clone, Copy, Debug)]
struct Counter {
    key: i64,
    count: u64,
    err: u64,
}

/// Mergeable SpaceSaving heavy-hitter summary over weighted updates.
///
/// Maintains at most `k` counters. Guarantees after observing total
/// weight `N`:
///
/// * every key with true weight `> N/k` is tracked (no false negatives),
/// * for every tracked key, `estimate >= truth` and
///   `estimate - truth <= err <= N/k`.
///
/// [`SpaceSaving::merge`] follows the mergeable-summaries construction
/// (Agarwal et al.): a key absent from a saturated summary contributes
/// that summary's minimum counter, then the union is truncated back to
/// the top `k` with a deterministic `(count desc, key asc)` order, which
/// preserves the combined `N/k` error bound and makes the result
/// independent of merge interleaving.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    cap: usize,
    total: u64,
    counters: Vec<Counter>,
    index: HashMap<i64, usize>,
}

impl SpaceSaving {
    /// Creates a summary tracking at most `cap` keys (`cap >= 1`).
    pub fn new(cap: usize) -> SpaceSaving {
        assert!(cap >= 1, "SpaceSaving capacity must be at least 1");
        SpaceSaving {
            cap,
            total: 0,
            counters: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Number of counters this summary can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total weight observed (the `N` in the `N/k` bounds).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records `weight` for `key`.
    pub fn observe(&mut self, key: i64, weight: u64) {
        self.total += weight;
        if let Some(&i) = self.index.get(&key) {
            self.counters[i].count += weight;
            return;
        }
        if self.counters.len() < self.cap {
            self.index.insert(key, self.counters.len());
            self.counters.push(Counter {
                key,
                count: weight,
                err: 0,
            });
            return;
        }
        // Evict the minimum counter: the newcomer inherits its count as
        // error, which is what makes the estimate an upper bound.
        let (mut min_i, mut min_c) = (0usize, self.counters[0].count);
        for (i, c) in self.counters.iter().enumerate().skip(1) {
            if c.count < min_c {
                min_i = i;
                min_c = c.count;
            }
        }
        let evicted = self.counters[min_i].key;
        self.index.remove(&evicted);
        self.index.insert(key, min_i);
        self.counters[min_i] = Counter {
            key,
            count: min_c + weight,
            err: min_c,
        };
    }

    /// Estimated weight for `key`: the tracked upper bound, or the
    /// summary-wide floor (minimum counter when saturated, else 0).
    pub fn estimate(&self, key: i64) -> u64 {
        match self.index.get(&key) {
            Some(&i) => self.counters[i].count,
            None => self.floor(),
        }
    }

    /// Upper bound on the weight of any untracked key.
    fn floor(&self) -> u64 {
        if self.counters.len() < self.cap {
            0
        } else {
            self.counters.iter().map(|c| c.count).min().unwrap_or(0)
        }
    }

    /// Whether `key` is tracked with an estimate at or above `threshold`.
    ///
    /// For any `threshold > total()/capacity()` this has no false
    /// negatives: a key whose true weight reaches `threshold` is
    /// guaranteed to be tracked and to report `true` here.
    pub fn is_heavy(&self, key: i64, threshold: u64) -> bool {
        match self.index.get(&key) {
            Some(&i) => self.counters[i].count >= threshold,
            None => false,
        }
    }

    /// All tracked keys with `estimate >= threshold`, heaviest first
    /// (ties broken by ascending key, so the order is deterministic).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<HeavyHitter> {
        let mut out: Vec<HeavyHitter> = self
            .counters
            .iter()
            .filter(|c| c.count >= threshold)
            .map(|c| HeavyHitter {
                key: c.key,
                estimate: c.count,
                err: c.err,
            })
            .collect();
        out.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.key.cmp(&b.key)));
        out
    }

    /// Merges `other` into `self`. Deterministic: the result is a pure
    /// function of the two summaries (no randomness, no dependence on
    /// thread interleaving), so folding per-shard sketches in a fixed slot
    /// order reproduces bit-identical results across runs. Folding in a
    /// *different* order can shift estimates within the error floor
    /// (intermediate truncation), but the combined `N/k` bound and the
    /// no-false-negative guarantee hold for any order.
    pub fn merge(&mut self, other: &SpaceSaving) {
        assert_eq!(
            self.cap, other.cap,
            "cannot merge SpaceSaving summaries of different capacities"
        );
        let self_floor = self.floor();
        let other_floor = other.floor();
        let mut union: HashMap<i64, Counter> = HashMap::with_capacity(self.cap * 2);
        for c in &self.counters {
            let (oc, oe) = match other.index.get(&c.key) {
                Some(&i) => (other.counters[i].count, other.counters[i].err),
                None => (other_floor, other_floor),
            };
            union.insert(
                c.key,
                Counter {
                    key: c.key,
                    count: c.count + oc,
                    err: c.err + oe,
                },
            );
        }
        for c in &other.counters {
            union.entry(c.key).or_insert(Counter {
                key: c.key,
                count: c.count + self_floor,
                err: c.err + self_floor,
            });
        }
        let mut merged: Vec<Counter> = union.into_values().collect();
        merged.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        merged.truncate(self.cap);
        self.total += other.total;
        self.counters = merged;
        self.index = self
            .counters
            .iter()
            .enumerate()
            .map(|(i, c)| (c.key, i))
            .collect();
    }
}

/// A merging t-digest over `f64` samples with deterministic compression.
///
/// This is the uniform-bin variant: centroids are kept sorted by mean and
/// compression greedily packs adjacent centroids up to `total/limit`
/// weight each, so the digest holds `O(limit)` centroids and any quantile
/// query has rank error bounded by one centroid (`~ n/limit` samples).
/// Compression sorts by `(mean, weight)` with a total order on floats,
/// which makes both single-shard digests and cross-shard merges
/// deterministic regardless of arrival interleaving.
#[derive(Clone, Debug)]
pub struct TDigest {
    limit: usize,
    centroids: Vec<(f64, f64)>, // (mean, weight), sorted by mean once compressed
    unsorted: usize,            // trailing entries not yet compressed
    count: f64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// Creates a digest that compresses down to roughly `limit` centroids.
    pub fn new(limit: usize) -> TDigest {
        assert!(limit >= 4, "TDigest limit must be at least 4");
        TDigest {
            limit,
            centroids: Vec::with_capacity(limit * 2 + 1),
            unsorted: 0,
            count: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of samples (total weight) added.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        self.add_weighted(value, 1.0);
    }

    /// Adds a sample with the given weight.
    pub fn add_weighted(&mut self, value: f64, weight: f64) {
        if !value.is_finite() || weight <= 0.0 {
            return;
        }
        self.centroids.push((value, weight));
        self.unsorted += 1;
        self.count += weight;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.centroids.len() >= self.limit * 2 {
            self.compress();
        }
    }

    fn compress(&mut self) {
        if self.centroids.is_empty() {
            self.unsorted = 0;
            return;
        }
        self.centroids
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let bound = (self.count / self.limit as f64).max(1.0);
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(self.limit + 1);
        let mut cur = self.centroids[0];
        for &(mean, weight) in &self.centroids[1..] {
            if cur.1 + weight <= bound {
                let w = cur.1 + weight;
                cur = ((cur.0 * cur.1 + mean * weight) / w, w);
            } else {
                out.push(cur);
                cur = (mean, weight);
            }
        }
        out.push(cur);
        self.centroids = out;
        self.unsorted = 0;
    }

    /// Estimated value at quantile `q` in `[0, 1]`.
    ///
    /// Piecewise-constant over centroids: the returned value is the mean
    /// of the centroid covering rank `q * count`, clamped to the observed
    /// `[min, max]`. Rank error is bounded by one centroid's weight.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.count <= 0.0 {
            return 0.0;
        }
        if self.unsorted > 0 {
            self.compress();
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let target = q * self.count;
        let mut cum = 0.0;
        for &(mean, weight) in &self.centroids {
            cum += weight;
            if target <= cum {
                return mean.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self`. Deterministic: the result depends only
    /// on the multiset of merged samples, not on merge order.
    pub fn merge(&mut self, other: &TDigest) {
        assert_eq!(
            self.limit, other.limit,
            "cannot merge TDigest summaries of different limits"
        );
        self.centroids.extend_from_slice(&other.centroids);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.unsorted = self.centroids.len(); // force full re-sort on compress
        self.compress();
    }
}

/// Configuration for a [`SkewSketch`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkewConfig {
    /// SpaceSaving capacity per relation (the `k` in the `N/k` bounds).
    pub keys: usize,
    /// t-digest centroid limit.
    pub centroids: usize,
    /// A key is *hot* when its combined estimate exceeds
    /// `hot_num/hot_den` of the total observed weight.
    pub hot_num: u32,
    /// Denominator of the hot fraction.
    pub hot_den: u32,
    /// No key is reported hot before this much total weight is observed
    /// (avoids declaring the first few tuples "hot").
    pub min_total: u64,
}

impl Default for SkewConfig {
    fn default() -> SkewConfig {
        SkewConfig {
            keys: 64,
            centroids: 128,
            // 5% of the stream: well above N/k for k=64, so the
            // SpaceSaving no-false-negative guarantee applies.
            hot_num: 1,
            hot_den: 20,
            min_total: 64 << 10,
        }
    }
}

impl SkewConfig {
    /// The hot threshold in absolute weight for a given observed total.
    pub fn threshold(&self, total: u64) -> u64 {
        ((total as u128 * self.hot_num as u128) / self.hot_den.max(1) as u128) as u64
    }
}

/// Which relation an observed tuple belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkewRel {
    /// The build side (R).
    R,
    /// The probe side (S).
    S,
}

/// Per-reshuffler skew summary: one SpaceSaving per relation plus a
/// t-digest over per-key load, with a flat `u64` wire form.
///
/// `observe` feeds the relation's heavy-hitter summary with the tuple's
/// byte weight and then records the key's *combined* (R+S) estimated
/// load in the digest — so the digest approximates the distribution of
/// state a key pins, weighted by how often that key is touched. The
/// scale-free skew signal is [`SkewSketch::skew_ratio`]: `p99 / p50` of
/// that distribution, which a controller can evaluate on its own local
/// shard without any cross-machine scaling.
#[derive(Clone, Debug)]
pub struct SkewSketch {
    cfg: SkewConfig,
    r: SpaceSaving,
    s: SpaceSaving,
    load: TDigest,
}

impl SkewSketch {
    /// Creates an empty sketch with the given configuration.
    pub fn new(cfg: SkewConfig) -> SkewSketch {
        SkewSketch {
            cfg,
            r: SpaceSaving::new(cfg.keys),
            s: SpaceSaving::new(cfg.keys),
            load: TDigest::new(cfg.centroids),
        }
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> SkewConfig {
        self.cfg
    }

    /// Total observed weight across both relations.
    pub fn total(&self) -> u64 {
        self.r.total() + self.s.total()
    }

    /// Records a routed tuple of `bytes` for `key` on relation `rel`.
    pub fn observe(&mut self, rel: SkewRel, key: i64, bytes: u64) {
        match rel {
            SkewRel::R => self.r.observe(key, bytes),
            SkewRel::S => self.s.observe(key, bytes),
        }
        let load = self.r.estimate(key) + self.s.estimate(key);
        self.load.add(load as f64);
    }

    /// Whether `key` currently crosses the heavy-hitter threshold on the
    /// combined (R+S) estimate. Never true before `min_total` weight.
    pub fn is_hot(&self, key: i64) -> bool {
        let total = self.total();
        if total < self.cfg.min_total {
            return false;
        }
        let threshold = self.cfg.threshold(total);
        // A key can be hot through either relation or their sum; consult
        // the tracked estimates only (untracked keys cannot be hot: their
        // true weight is at most N/k < threshold).
        let side = |ss: &SpaceSaving| {
            if ss.is_heavy(key, 1) {
                ss.estimate(key)
            } else {
                0
            }
        };
        let est = side(&self.r) + side(&self.s);
        est >= threshold.max(1)
    }

    /// Heavy hitters over the combined estimate, heaviest first.
    pub fn hot_keys(&self) -> Vec<HeavyHitter> {
        let total = self.total();
        if total < self.cfg.min_total {
            return Vec::new();
        }
        let threshold = self.cfg.threshold(total).max(1);
        let mut by_key: HashMap<i64, HeavyHitter> = HashMap::new();
        for hh in self
            .r
            .heavy_hitters(1)
            .into_iter()
            .chain(self.s.heavy_hitters(1))
        {
            let e = by_key.entry(hh.key).or_insert(HeavyHitter {
                key: hh.key,
                estimate: 0,
                err: 0,
            });
            e.estimate += hh.estimate;
            e.err += hh.err;
        }
        let mut out: Vec<HeavyHitter> = by_key
            .into_values()
            .filter(|h| h.estimate >= threshold)
            .collect();
        out.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.key.cmp(&b.key)));
        out
    }

    /// Estimated per-key load at quantile `q`.
    pub fn load_quantile(&mut self, q: f64) -> f64 {
        self.load.quantile(q)
    }

    /// The scale-free skew signal: `p99 / max(p50, 1)` of per-key load.
    ///
    /// Near 1.0 on uniform key distributions, grows with Zipf exponent;
    /// because it is a ratio it needs no rescaling when evaluated on a
    /// single shard's `1/J` sample of the stream.
    pub fn skew_ratio(&mut self) -> f64 {
        if self.load.count() <= 0.0 {
            return 1.0;
        }
        let p99 = self.load.quantile(0.99);
        let p50 = self.load.quantile(0.5).max(1.0);
        (p99 / p50).max(1.0)
    }

    /// Merges `other` into `self`. Deterministic across shard orderings.
    pub fn merge(&mut self, other: &SkewSketch) {
        self.r.merge(&other.r);
        self.s.merge(&other.s);
        self.load.merge(&other.load);
    }

    /// Flattens the sketch into a `u64` vector for the wire (floats
    /// travel as IEEE-754 bit patterns). Inverse of [`SkewSketch::from_parts`].
    pub fn to_parts(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(
            8 + (self.r.counters.len() + self.s.counters.len()) * 3 + self.load.centroids.len() * 2,
        );
        out.push(self.cfg.keys as u64);
        out.push(self.cfg.centroids as u64);
        out.push(((self.cfg.hot_num as u64) << 32) | self.cfg.hot_den as u64);
        out.push(self.cfg.min_total);
        for ss in [&self.r, &self.s] {
            out.push(ss.total);
            out.push(ss.counters.len() as u64);
            for c in &ss.counters {
                out.push(c.key as u64);
                out.push(c.count);
                out.push(c.err);
            }
        }
        out.push(self.load.count.to_bits());
        out.push(self.load.min.to_bits());
        out.push(self.load.max.to_bits());
        out.push(self.load.centroids.len() as u64);
        for &(mean, weight) in &self.load.centroids {
            out.push(mean.to_bits());
            out.push(weight.to_bits());
        }
        out
    }

    /// Rebuilds a sketch from [`SkewSketch::to_parts`] output. Returns
    /// `None` on malformed input (truncated or inconsistent lengths).
    pub fn from_parts(parts: &[u64]) -> Option<SkewSketch> {
        let mut it = parts.iter().copied();
        let mut next = || it.next();
        let keys = next()? as usize;
        let centroids = next()? as usize;
        let hot = next()?;
        let min_total = next()?;
        if keys == 0 || centroids < 4 {
            return None;
        }
        let cfg = SkewConfig {
            keys,
            centroids,
            hot_num: (hot >> 32) as u32,
            hot_den: hot as u32,
            min_total,
        };
        let mut sketch = SkewSketch::new(cfg);
        for ss in [&mut sketch.r, &mut sketch.s] {
            ss.total = next()?;
            let n = next()? as usize;
            if n > keys {
                return None;
            }
            for _ in 0..n {
                let key = next()? as i64;
                let count = next()?;
                let err = next()?;
                ss.index.insert(key, ss.counters.len());
                ss.counters.push(Counter { key, count, err });
            }
        }
        sketch.load.count = f64::from_bits(next()?);
        sketch.load.min = f64::from_bits(next()?);
        sketch.load.max = f64::from_bits(next()?);
        let n = next()? as usize;
        if n > centroids * 2 + 2 {
            return None;
        }
        for _ in 0..n {
            let mean = f64::from_bits(next()?);
            let weight = f64::from_bits(next()?);
            sketch.load.centroids.push((mean, weight));
        }
        // The serialized centroid list may contain an uncompressed tail;
        // treat the whole list as unsorted so the first quantile query
        // compresses exactly like the original sketch would have.
        sketch.load.unsorted = sketch.load.centroids.len();
        if it.next().is_some() {
            return None;
        }
        Some(sketch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn true_counts(stream: &[(i64, u64)]) -> HashMap<i64, u64> {
        let mut m = HashMap::new();
        for &(k, w) in stream {
            *m.entry(k).or_insert(0) += w;
        }
        m
    }

    #[test]
    fn spacesaving_tracks_an_obvious_heavy_hitter() {
        let mut ss = SpaceSaving::new(8);
        for i in 0..1000i64 {
            ss.observe(i % 100, 1);
            ss.observe(7, 4); // key 7 gets ~80% of the weight
        }
        let n = ss.total();
        assert!(ss.is_heavy(7, n / 8));
        let hits = ss.heavy_hitters(n / 8);
        assert_eq!(hits[0].key, 7);
        assert!(hits[0].estimate >= 4000);
    }

    #[test]
    fn spacesaving_merge_is_order_independent() {
        let mut rng = StdRng::seed_from_u64(9);
        let stream: Vec<(i64, u64)> = (0..4000)
            .map(|_| (rng.gen_range(0..50), rng.gen_range(1..16)))
            .collect();
        let mut shards: Vec<SpaceSaving> = (0..4).map(|_| SpaceSaving::new(16)).collect();
        for (i, &(k, w)) in stream.iter().enumerate() {
            shards[i % 4].observe(k, w);
        }
        let mut fwd = shards[0].clone();
        for s in &shards[1..] {
            fwd.merge(s);
        }
        // Determinism: the same fold order reproduces bit-identical state.
        let mut again = shards[0].clone();
        for s in &shards[1..] {
            again.merge(s);
        }
        assert_eq!(fwd.heavy_hitters(0), again.heavy_hitters(0));
        // A different fold order may shift estimates within the error
        // floor, but totals agree and genuinely heavy keys agree.
        let mut rev = shards[3].clone();
        for s in shards[..3].iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd.total(), rev.total());
        let n = fwd.total();
        let ha: Vec<i64> = fwd.heavy_hitters(n / 8).iter().map(|h| h.key).collect();
        let hb: Vec<i64> = rev.heavy_hitters(n / 8).iter().map(|h| h.key).collect();
        assert_eq!(ha, hb);
    }

    #[test]
    fn tdigest_quantiles_on_known_distribution() {
        let mut d = TDigest::new(64);
        for i in 0..10_000 {
            d.add(i as f64);
        }
        let p50 = d.quantile(0.5);
        let p99 = d.quantile(0.99);
        assert!((p50 - 5000.0).abs() < 400.0, "p50={p50}");
        assert!((p99 - 9900.0).abs() < 400.0, "p99={p99}");
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(1.0), 9999.0);
    }

    #[test]
    fn tdigest_merge_matches_single_digest_ranks() {
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<f64> = (0..8000).map(|_| rng.gen_range(0.0..1000.0)).collect();
        let mut whole = TDigest::new(64);
        let mut parts: Vec<TDigest> = (0..4).map(|_| TDigest::new(64)).collect();
        for (i, &v) in vals.iter().enumerate() {
            whole.add(v);
            parts[i % 4].add(v);
        }
        let mut merged = parts[0].clone();
        for p in &parts[1..] {
            merged.merge(p);
        }
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = merged.quantile(q);
            let rank = sorted.partition_point(|&v| v < est) as f64 / sorted.len() as f64;
            assert!(
                (rank - q).abs() < 0.05,
                "q={q} est={est} rank={rank} drifted"
            );
        }
    }

    #[test]
    fn skew_ratio_separates_uniform_from_zipf() {
        let mut uniform = SkewSketch::new(SkewConfig {
            min_total: 0,
            ..SkewConfig::default()
        });
        let mut skewed = SkewSketch::new(SkewConfig {
            min_total: 0,
            ..SkewConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20_000 {
            uniform.observe(SkewRel::R, rng.gen_range(0..512), 64);
            // 40% of the skewed stream hits key 0.
            let key = if rng.gen_range(0..10) < 4 {
                0
            } else {
                rng.gen_range(1..512)
            };
            skewed.observe(SkewRel::S, key, 64);
        }
        let u = uniform.skew_ratio();
        let z = skewed.skew_ratio();
        assert!(u < 4.0, "uniform ratio {u} unexpectedly large");
        assert!(z > 10.0, "skewed ratio {z} unexpectedly small");
        assert!(skewed.is_hot(0));
        assert!(!uniform.is_hot(0));
        assert_eq!(skewed.hot_keys()[0].key, 0);
    }

    #[test]
    fn parts_round_trip_preserves_estimates_and_quantiles() {
        let mut sk = SkewSketch::new(SkewConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5000 {
            sk.observe(SkewRel::R, rng.gen_range(0..64), rng.gen_range(1..256));
            sk.observe(SkewRel::S, rng.gen_range(0..64), rng.gen_range(1..256));
        }
        let parts = sk.to_parts();
        let mut back = SkewSketch::from_parts(&parts).expect("round trip");
        assert_eq!(back.to_parts(), parts);
        assert_eq!(back.total(), sk.total());
        assert_eq!(back.hot_keys(), sk.hot_keys());
        assert_eq!(back.skew_ratio(), sk.skew_ratio());
        // Malformed inputs are rejected, not mis-parsed.
        assert!(SkewSketch::from_parts(&parts[..parts.len() - 1]).is_none());
        assert!(SkewSketch::from_parts(&[]).is_none());
    }

    #[test]
    fn merged_parts_equal_merged_sketches() {
        let mut a = SkewSketch::new(SkewConfig::default());
        let mut b = SkewSketch::new(SkewConfig::default());
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..3000 {
            a.observe(SkewRel::R, rng.gen_range(0..40), 100);
            b.observe(SkewRel::S, rng.gen_range(0..40), 100);
        }
        let via_parts = {
            let mut m = SkewSketch::from_parts(&a.to_parts()).unwrap();
            m.merge(&SkewSketch::from_parts(&b.to_parts()).unwrap());
            m
        };
        let mut direct = a.clone();
        direct.merge(&b);
        assert_eq!(via_parts.to_parts(), direct.to_parts());
    }

    proptest! {
        /// SpaceSaving pin: any key whose true weight strictly exceeds
        /// N/k is tracked, and every tracked estimate overshoots the
        /// truth by at most N/k.
        #[test]
        fn spacesaving_error_bounds(
            stream in prop::collection::vec((0i64..200, 1u64..64), 1..2000),
            cap in 4usize..48,
        ) {
            let mut ss = SpaceSaving::new(cap);
            for &(k, w) in &stream {
                ss.observe(k, w);
            }
            let truth = true_counts(&stream);
            let n = ss.total();
            prop_assert_eq!(n, truth.values().sum::<u64>());
            let bound = n / cap as u64;
            for (&k, &t) in &truth {
                let est = ss.estimate(k);
                // No underestimates, tracked or not: untracked keys
                // report the floor, which upper-bounds their true weight.
                prop_assert!(est >= t, "key {} underestimated: {} < {}", k, est, t);
                if ss.index.contains_key(&k) {
                    prop_assert!(est - t <= bound, "key {} err {} > N/k {}", k, est - t, bound);
                }
                if t > bound {
                    prop_assert!(
                        ss.is_heavy(k, t),
                        "heavy key {} (true {}) missing above N/k={}", k, t, bound
                    );
                }
            }
        }

        /// Merged summaries keep the combined-N/k error bound and still
        /// have no false negatives above it.
        #[test]
        fn spacesaving_merge_error_bounds(
            stream in prop::collection::vec((0i64..120, 1u64..32), 2..1500),
            cap in 8usize..32,
        ) {
            let mut a = SpaceSaving::new(cap);
            let mut b = SpaceSaving::new(cap);
            for (i, &(k, w)) in stream.iter().enumerate() {
                if i % 2 == 0 { a.observe(k, w) } else { b.observe(k, w) }
            }
            let mut m = a.clone();
            m.merge(&b);
            let truth = true_counts(&stream);
            let n: u64 = truth.values().sum();
            prop_assert_eq!(m.total(), n);
            let bound = 2 * (n / cap as u64) + 2; // combined bound across two shards
            for (&k, &t) in &truth {
                if m.index.contains_key(&k) {
                    let est = m.estimate(k);
                    prop_assert!(est >= t, "merged key {} underestimated", k);
                    prop_assert!(est - t <= bound, "merged key {} err {} > {}", k, est - t, bound);
                }
                if t > bound {
                    prop_assert!(m.index.contains_key(&k), "merged heavy key {} missing", k);
                }
            }
        }

        /// t-digest pin: quantile estimates land within ~2 centroids of
        /// the true rank.
        #[test]
        fn tdigest_rank_error(
            vals in prop::collection::vec(0u32..1_000_000, 32..4000),
            qpct in 1u32..99,
        ) {
            let q = qpct as f64 / 100.0;
            let mut d = TDigest::new(64);
            for &v in &vals {
                d.add(v as f64);
            }
            let est = d.quantile(q);
            let mut sorted: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
            sorted.sort_by(f64::total_cmp);
            let n = sorted.len() as f64;
            let lo = sorted.partition_point(|&v| v < est) as f64;
            let hi = sorted.partition_point(|&v| v <= est) as f64;
            // The estimate's rank interval must overlap [q*n - 2n/64, q*n + 2n/64].
            let slack = 2.0 * n / 64.0 + 1.0;
            prop_assert!(
                lo <= q * n + slack && hi >= q * n - slack,
                "q={} est={} rank in [{}, {}] outside +/-{}", q, est, lo, hi, slack
            );
        }
    }
}
