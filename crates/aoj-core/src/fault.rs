//! Fault injection, failure detection, and recovery bookkeeping.
//!
//! Three pieces, deliberately backend-agnostic (this crate sits below
//! every execution backend):
//!
//! * [`FaultPlan`] — a *deterministic* fault-injection schedule: kill
//!   machine M at virtual/session time T, after N processed data items,
//!   or on the Kth background checkpoint. The session layer lowers each
//!   injection onto the backend's native kill primitive (an
//!   event-scheduled kill in the simulator, a worker-thread abort on
//!   the threaded runtime, a SIGKILL of the worker process on the TCP
//!   backend), so every recovery path is reproducible and testable.
//! * [`FailureDetector`] — the coordinator-side timeout/suspicion state
//!   machine. Liveness evidence is any control-plane frame from a
//!   worker (gauge samples double as heartbeats — see the TCP
//!   backend's stats cadence); a registered machine that stays silent
//!   past [`DetectorConfig::timeout_us`] is declared dead. In-process
//!   backends observe death directly (a crashed worker thread is
//!   immediately visible) and record it without the timeout path.
//! * [`WorkerDeath`] / [`FaultLog`] — the typed surfacing of a
//!   confirmed death: which machine, which incarnation, when, why, and
//!   how long detection took. Backends append to a shared [`FaultLog`];
//!   the session layer polls it and hands deaths to the recovery
//!   controller instead of wedging or failing the run ambiguously.
//! * [`RecoveryStats`] — what a recovery cost: detection latency,
//!   rollback-to-resume time, replayed tuples, and matches suppressed
//!   by exactly-once dedup.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// When an injected fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At session time `at_us` (virtual microseconds on the simulator,
    /// wall microseconds since `run()` on the live backends).
    AtTime {
        /// Microseconds on the backend's session clock.
        at_us: u64,
    },
    /// Once the cluster has processed at least this many data items
    /// (the backends' `data_processed` gauge — deterministic on the
    /// simulator, monotone on the live backends).
    AfterTuples {
        /// Processed-data threshold.
        tuples: u64,
    },
    /// Immediately after the Kth automatic background checkpoint
    /// completes (1-based). Lowered by the recovery controller, which
    /// is the only layer that counts checkpoints.
    OnCheckpoint {
        /// 1-based checkpoint ordinal.
        k: u32,
    },
}

/// One scheduled kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultInjection {
    /// The machine slot to kill.
    pub machine: usize,
    /// When to kill it.
    pub trigger: FaultTrigger,
}

/// A deterministic fault-injection schedule, carried on the session
/// builder and lowered onto backend-native kill primitives at launch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled kills, in declaration order.
    pub kills: Vec<FaultInjection>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule a kill of `machine` at session time `at_us`.
    pub fn kill_at(mut self, machine: usize, at_us: u64) -> FaultPlan {
        self.kills.push(FaultInjection {
            machine,
            trigger: FaultTrigger::AtTime { at_us },
        });
        self
    }

    /// Schedule a kill of `machine` once `tuples` data items have been
    /// processed cluster-wide.
    pub fn kill_after_tuples(mut self, machine: usize, tuples: u64) -> FaultPlan {
        self.kills.push(FaultInjection {
            machine,
            trigger: FaultTrigger::AfterTuples { tuples },
        });
        self
    }

    /// Schedule a kill of `machine` right after the `k`-th (1-based)
    /// automatic background checkpoint.
    pub fn kill_on_checkpoint(mut self, machine: usize, k: u32) -> FaultPlan {
        self.kills.push(FaultInjection {
            machine,
            trigger: FaultTrigger::OnCheckpoint { k },
        });
        self
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }
}

/// Why a worker was declared dead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeathCause {
    /// The worker's control connection dropped mid-session (the TCP
    /// backend's fastest signal — a SIGKILL'd process resets its
    /// sockets immediately).
    ConnectionLost,
    /// No control-plane frame (gauge heartbeat included) for longer
    /// than the detector timeout.
    HeartbeatTimeout {
        /// How long the machine had been silent when declared dead.
        silent_for_us: u64,
    },
    /// `waitpid` reaped a worker process that exited mid-run without
    /// being asked to retire. `exit_code` is `None` when the process
    /// was killed by a signal.
    UnexpectedExit {
        /// The exit code, if the process exited (vs. was signalled).
        exit_code: Option<i32>,
    },
    /// An injected kill on an in-process backend (simulator event kill
    /// or threaded worker abort) — observed directly, no detector
    /// round-trip involved.
    Injected,
}

impl fmt::Display for DeathCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeathCause::ConnectionLost => write!(f, "control connection lost"),
            DeathCause::HeartbeatTimeout { silent_for_us } => {
                write!(f, "heartbeat timeout (silent for {silent_for_us}us)")
            }
            DeathCause::UnexpectedExit { exit_code: Some(c) } => {
                write!(f, "unexpected exit with code {c}")
            }
            DeathCause::UnexpectedExit { exit_code: None } => {
                write!(f, "unexpected exit (killed by signal)")
            }
            DeathCause::Injected => write!(f, "injected kill"),
        }
    }
}

/// A confirmed worker death — the typed error a failed machine produces
/// instead of a wedged or ambiguously failed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerDeath {
    /// The dead machine slot.
    pub machine: usize,
    /// Its incarnation number at death.
    pub gen: u32,
    /// Session time the death was confirmed, in microseconds.
    pub at_us: u64,
    /// Why it was declared dead.
    pub cause: DeathCause,
    /// Injection-to-confirmation latency in microseconds, when the
    /// death was injected and the injection time is known (0 for
    /// organic deaths).
    pub detect_latency_us: u64,
}

impl fmt::Display for WorkerDeath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker machine {} (gen {}) died at {}us: {}",
            self.machine, self.gen, self.at_us, self.cause
        )
    }
}

/// Failure-detector tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Silence threshold: a registered machine with no liveness
    /// evidence for this long is declared dead. Must comfortably exceed
    /// the heartbeat cadence (the TCP backend ships gauges every 5ms
    /// and idle-heartbeats at 100ms).
    pub timeout_us: u64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            // 10x the idle heartbeat period: tolerant of scheduler
            // stalls on a loaded host, still sub-second detection.
            timeout_us: 1_000_000,
        }
    }
}

/// The coordinator-side timeout/suspicion state machine.
///
/// Register a machine when it comes up, feed it liveness evidence
/// ([`note_alive`](FailureDetector::note_alive)) on every control-plane
/// frame, deregister on clean retirement/shutdown, and
/// [`poll`](FailureDetector::poll) periodically: machines silent past
/// the timeout come back as [`WorkerDeath`]s (and are deregistered, so
/// each death is reported once).
#[derive(Debug)]
pub struct FailureDetector {
    cfg: DetectorConfig,
    /// machine -> (gen, last liveness evidence, us).
    last_seen: HashMap<usize, (u32, u64)>,
}

impl FailureDetector {
    /// A detector with the given tuning.
    pub fn new(cfg: DetectorConfig) -> FailureDetector {
        FailureDetector {
            cfg,
            last_seen: HashMap::new(),
        }
    }

    /// Start watching `machine` (incarnation `gen`) as of `now_us`.
    pub fn register(&mut self, machine: usize, gen: u32, now_us: u64) {
        self.last_seen.insert(machine, (gen, now_us));
    }

    /// Stop watching `machine` (clean retirement or session shutdown).
    pub fn deregister(&mut self, machine: usize) {
        self.last_seen.remove(&machine);
    }

    /// Record liveness evidence for `machine` at `now_us`. Unknown
    /// machines are ignored (frames can race a deregistration).
    pub fn note_alive(&mut self, machine: usize, now_us: u64) {
        if let Some((_, seen)) = self.last_seen.get_mut(&machine) {
            *seen = (*seen).max(now_us);
        }
    }

    /// Is `machine` currently registered?
    pub fn watching(&self, machine: usize) -> bool {
        self.last_seen.contains_key(&machine)
    }

    /// Declare machines silent past the timeout dead, deregistering
    /// each so it is reported exactly once.
    pub fn poll(&mut self, now_us: u64) -> Vec<WorkerDeath> {
        let timeout = self.cfg.timeout_us;
        let mut dead: Vec<WorkerDeath> = Vec::new();
        self.last_seen.retain(|&machine, &mut (gen, seen)| {
            let silent = now_us.saturating_sub(seen);
            if silent >= timeout {
                dead.push(WorkerDeath {
                    machine,
                    gen,
                    at_us: now_us,
                    cause: DeathCause::HeartbeatTimeout {
                        silent_for_us: silent,
                    },
                    detect_latency_us: 0,
                });
                false
            } else {
                true
            }
        });
        dead.sort_by_key(|d| d.machine);
        dead
    }
}

/// A shared, append-only log of confirmed deaths: backends (or their
/// reactor threads) record, the session layer drains. Cheap to clone
/// (it is an `Arc` inside).
#[derive(Clone, Debug, Default)]
pub struct FaultLog {
    deaths: Arc<Mutex<Vec<WorkerDeath>>>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// Append one confirmed death.
    pub fn record(&self, death: WorkerDeath) {
        self.deaths.lock().unwrap().push(death);
    }

    /// Take every recorded death, leaving the log empty.
    pub fn drain(&self) -> Vec<WorkerDeath> {
        std::mem::take(&mut *self.deaths.lock().unwrap())
    }

    /// Snapshot the current deaths without consuming them.
    pub fn peek(&self) -> Vec<WorkerDeath> {
        self.deaths.lock().unwrap().clone()
    }

    /// Has anything died?
    pub fn is_empty(&self) -> bool {
        self.deaths.lock().unwrap().is_empty()
    }
}

/// What one (or more) automatic recoveries cost, accumulated by the
/// recovery controller across a supervised session's life.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Confirmed worker deaths handled.
    pub crashes: u64,
    /// Sum of injection-to-confirmation latencies, microseconds.
    pub detection_latency_us: u64,
    /// Sum of confirmation-to-resume (rollback + respawn + replay)
    /// times, microseconds.
    pub recovery_time_us: u64,
    /// Input tuples replayed from the source cursor across recoveries.
    pub replayed_tuples: u64,
    /// Re-emitted matches suppressed by the exactly-once dedup.
    pub deduped_matches: u64,
    /// Automatic background checkpoints taken.
    pub checkpoints: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_accumulate() {
        let plan = FaultPlan::new()
            .kill_at(1, 500)
            .kill_after_tuples(2, 1000)
            .kill_on_checkpoint(3, 2);
        assert_eq!(plan.kills.len(), 3);
        assert_eq!(plan.kills[0].trigger, FaultTrigger::AtTime { at_us: 500 });
        assert_eq!(
            plan.kills[1].trigger,
            FaultTrigger::AfterTuples { tuples: 1000 }
        );
        assert_eq!(plan.kills[2].trigger, FaultTrigger::OnCheckpoint { k: 2 });
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn detector_reports_silent_machine_once() {
        let mut det = FailureDetector::new(DetectorConfig { timeout_us: 100 });
        det.register(1, 0, 0);
        det.register(2, 3, 0);
        assert!(det.poll(50).is_empty());
        // Machine 2 heartbeats; machine 1 stays silent.
        det.note_alive(2, 90);
        let dead = det.poll(120);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].machine, 1);
        assert_eq!(dead[0].gen, 0);
        assert_eq!(
            dead[0].cause,
            DeathCause::HeartbeatTimeout { silent_for_us: 120 }
        );
        // Reported exactly once.
        assert!(det.poll(500).iter().all(|d| d.machine != 1));
        assert!(!det.watching(1));
    }

    #[test]
    fn detector_ignores_deregistered_and_unknown() {
        let mut det = FailureDetector::new(DetectorConfig { timeout_us: 100 });
        det.register(4, 1, 0);
        det.note_alive(9, 10); // unknown: ignored
        det.deregister(4);
        assert!(det.poll(1_000).is_empty());
    }

    #[test]
    fn detector_liveness_evidence_defers_death() {
        let mut det = FailureDetector::new(DetectorConfig { timeout_us: 100 });
        det.register(1, 0, 0);
        det.note_alive(1, 80);
        assert!(det.poll(150).is_empty()); // silent for 70 < 100
        let dead = det.poll(180); // silent for 100 >= 100
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn fault_log_drains_once() {
        let log = FaultLog::new();
        assert!(log.is_empty());
        log.record(WorkerDeath {
            machine: 2,
            gen: 1,
            at_us: 42,
            cause: DeathCause::ConnectionLost,
            detect_latency_us: 7,
        });
        let peeked = log.peek();
        assert_eq!(peeked.len(), 1);
        let drained = log.drain();
        assert_eq!(drained, peeked);
        assert!(log.is_empty());
        assert!(log.drain().is_empty());
    }

    #[test]
    fn death_display_names_machine_and_status() {
        let d = WorkerDeath {
            machine: 3,
            gen: 2,
            at_us: 10,
            cause: DeathCause::UnexpectedExit { exit_code: None },
            detect_latency_us: 0,
        };
        let s = d.to_string();
        assert!(s.contains("machine 3"), "{s}");
        assert!(s.contains("killed by signal"), "{s}");
        let d2 = WorkerDeath {
            cause: DeathCause::UnexpectedExit {
                exit_code: Some(101),
            },
            ..d
        };
        assert!(d2.to_string().contains("code 101"));
    }
}
