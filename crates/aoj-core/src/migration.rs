//! Locality-aware migration planning (Lemma 4.4, Fig. 3).
//!
//! A step `(n, m) → (n/2, 2m)` merges R partition pairs and splits S
//! partitions. The plan assigns every machine:
//!
//! * a **partner** — the sibling joiner holding the other half of the
//!   merged R partition. Partners *exchange* their full R state (each keeps
//!   its own and receives the other's), costing `2·|R|/n` time units in
//!   parallel across all pairs;
//! * a **keep bit** — S tuples whose next ticket bit differs are
//!   *discarded*, deterministically and with zero communication;
//! * nothing else. No third machine is involved; the naive alternative
//!   (re-shuffle all state through the new grid) moves `(1 − 1/J)` of all
//!   stored bytes instead of `1/semi-perimeter`-ish — the ablation in
//!   `aoj-bench` quantifies the gap.

use crate::mapping::{GridAssignment, GridPos, Mapping, Step};
use crate::ticket::refine_bit;
use crate::tuple::{Rel, Tuple};

/// How a stored old-state tuple is treated by a migration (the paper's
/// `Keep` / `Migrated` / `Discard` partition of `τ ∪ Δ`, §4.3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateClass {
    /// Stays on this machine (refining relation, matching bit).
    Keep,
    /// Stays on this machine *and* a copy is sent to the partner
    /// (coarsening relation; the exchange of Lemma 4.4).
    KeepAndMigrate,
    /// No longer belongs here; dropped at migration finalisation
    /// (refining relation, mismatching bit).
    Discard,
}

impl StateClass {
    /// Does the tuple remain part of this machine's post-migration state?
    pub fn kept(self) -> bool {
        !matches!(self, StateClass::Discard)
    }

    /// Must a copy be sent to the partner?
    pub fn migrated(self) -> bool {
        matches!(self, StateClass::KeepAndMigrate)
    }
}

/// One machine's role in a migration step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineStepSpec {
    /// The machine this spec applies to.
    pub machine: usize,
    /// Grid position before the step.
    pub old_pos: GridPos,
    /// Grid position after the step.
    pub new_pos: GridPos,
    /// Exchange partner (Lemma 4.4).
    pub partner: usize,
    /// Relation whose partitions merge: exchanged with the partner.
    pub exchange_rel: Rel,
    /// Relation whose partitions split: filtered by `keep_bit`.
    pub refine_rel: Rel,
    /// Keep `refine_rel` tuples whose [`refine_bit`] equals this.
    pub keep_bit: u32,
    /// Partition count of `refine_rel` *before* the step (the granularity
    /// at which [`refine_bit`] is evaluated).
    pub refine_parts_before: u32,
}

impl MachineStepSpec {
    /// Classify a stored tuple.
    #[inline]
    pub fn classify(&self, t: &Tuple) -> StateClass {
        if t.rel == self.exchange_rel {
            StateClass::KeepAndMigrate
        } else if refine_bit(t.ticket, self.refine_parts_before) == self.keep_bit {
            StateClass::Keep
        } else {
            StateClass::Discard
        }
    }

    /// Convenience: does this machine keep `t` after the migration?
    #[inline]
    pub fn is_kept(&self, t: &Tuple) -> bool {
        self.classify(t).kept()
    }

    /// Convenience: must `t` be copied to the partner?
    #[inline]
    pub fn is_migrated(&self, t: &Tuple) -> bool {
        self.classify(t).migrated()
    }
}

/// A complete single-step migration plan.
#[derive(Clone, Debug)]
pub struct MigrationPlan {
    /// The step being performed.
    pub step: Step,
    /// Mapping before.
    pub from: Mapping,
    /// Mapping after.
    pub to: Mapping,
    /// Per-machine roles, indexed by machine id.
    pub specs: Vec<MachineStepSpec>,
}

/// Build the locality-aware plan for applying `step` to the current
/// assignment. The assignment itself is not modified; apply
/// [`GridAssignment::apply_step`] once the operator commits.
pub fn plan_step(assign: &GridAssignment, step: Step) -> MigrationPlan {
    let from = assign.mapping();
    let to = step
        .apply(from)
        .expect("mapping cannot shrink below one partition");
    let exchange_rel = step.coarsens();
    let refine_rel = step.refines();
    let refine_parts_before = from.parts(refine_rel);
    let j = from.j() as usize;
    let mut specs = Vec::with_capacity(j);
    for machine in 0..j {
        let old_pos = assign.pos_of(machine);
        let new_pos = GridAssignment::relabel(old_pos, step);
        let pp = GridAssignment::partner_pos(old_pos, step);
        let partner = assign.machine_at(pp.row, pp.col);
        // The keep bit equals the bit this machine contributes to its new
        // coordinate along the refining axis: for HalveRows the new column
        // is (j<<1)|(i&1), so the machine keeps S tuples whose refine bit
        // equals i&1 — and symmetrically for HalveCols.
        let keep_bit = match step {
            Step::HalveRows => old_pos.row & 1,
            Step::HalveCols => old_pos.col & 1,
        };
        specs.push(MachineStepSpec {
            machine,
            old_pos,
            new_pos,
            partner,
            exchange_rel,
            refine_rel,
            keep_bit,
            refine_parts_before,
        });
    }
    MigrationPlan {
        step,
        from,
        to,
        specs,
    }
}

/// Tuples moved by the locality-aware plan, given per-machine counts of the
/// coarsening relation's state: exactly the exchanged copies (Lemma 4.4).
pub fn locality_moved_tuples(per_machine_exchange_state: &[u64]) -> u64 {
    per_machine_exchange_state.iter().sum()
}

/// Tuples moved by the naive full-repartition baseline (the blocking
/// approach of Flux-style operators, §4.3): all previous state is
/// re-shuffled through the new grid with fresh partition assignments, so a
/// stored copy lands on its old machine only by luck — `1/J` of the time
/// under content-insensitive placement. We charge transmission of all
/// post-step state copies except that lucky fraction.
///
/// `per_machine_state[k] = (r_copies, s_copies)` stored before the step.
pub fn naive_moved_tuples(
    assign: &GridAssignment,
    step: Step,
    per_machine_state: &[(u64, u64)],
) -> u64 {
    let total_r_copies: u64 = per_machine_state.iter().map(|x| x.0).sum();
    let total_s_copies: u64 = per_machine_state.iter().map(|x| x.1).sum();
    // After the step the coarsening relation's replication factor doubles
    // (each partition is held by twice as many joiners) and the refining
    // relation's halves.
    let (r_after, s_after) = match step {
        Step::HalveRows => (total_r_copies * 2, total_s_copies / 2),
        Step::HalveCols => (total_r_copies / 2, total_s_copies * 2),
    };
    let j = assign.mapping().j() as u64;
    let copies_after = r_after + s_after;
    copies_after - copies_after / j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::{partition, TicketGen};

    /// Simulate per-machine state under an assignment: distribute `count`
    /// tuples per relation by ticket, returning state[machine] = tuples.
    fn build_state(assign: &GridAssignment, count: u64, gen: &mut TicketGen) -> Vec<Vec<Tuple>> {
        let mp = assign.mapping();
        let mut state = vec![Vec::new(); mp.j() as usize];
        for seq in 0..count {
            let tr = Tuple::new(Rel::R, seq * 2, seq as i64, gen.next());
            let row = partition(tr.ticket, mp.n);
            for mach in assign.machines_for_row(row) {
                state[mach].push(tr);
            }
            let ts = Tuple::new(Rel::S, seq * 2 + 1, seq as i64, gen.next());
            let col = partition(ts.ticket, mp.m);
            for mach in assign.machines_for_col(col) {
                state[mach].push(ts);
            }
        }
        state
    }

    /// Apply a plan to simulated state: keep/discard locally, deliver
    /// migrated copies to partners. Returns the new state.
    fn apply_plan(plan: &MigrationPlan, state: &[Vec<Tuple>]) -> Vec<Vec<Tuple>> {
        let j = state.len();
        let mut next: Vec<Vec<Tuple>> = vec![Vec::new(); j];
        for k in 0..j {
            let spec = &plan.specs[k];
            for t in &state[k] {
                match spec.classify(t) {
                    StateClass::Keep => next[k].push(*t),
                    StateClass::KeepAndMigrate => {
                        next[k].push(*t);
                        next[spec.partner].push(*t);
                    }
                    StateClass::Discard => {}
                }
            }
        }
        next
    }

    /// Check that `state` matches the grid invariant for `assign`: machine
    /// at (i, j) holds exactly R tuples with row i and S tuples with col j.
    fn assert_grid_invariant(assign: &GridAssignment, state: &[Vec<Tuple>], universe: &[Tuple]) {
        let mp = assign.mapping();
        for (k, tuples) in state.iter().enumerate() {
            let pos = assign.pos_of(k);
            let mut expected: Vec<Tuple> = universe
                .iter()
                .filter(|t| match t.rel {
                    Rel::R => partition(t.ticket, mp.n) == pos.row,
                    Rel::S => partition(t.ticket, mp.m) == pos.col,
                })
                .copied()
                .collect();
            let mut actual = tuples.clone();
            let key = |t: &Tuple| (t.seq, t.rel.index());
            expected.sort_by_key(key);
            actual.sort_by_key(key);
            assert_eq!(actual, expected, "machine {k} at {pos:?} state mismatch");
        }
    }

    fn universe(state: &[Vec<Tuple>]) -> Vec<Tuple> {
        let mut all: Vec<Tuple> = state.iter().flatten().copied().collect();
        all.sort_by_key(|t| (t.seq, t.rel.index()));
        all.dedup();
        all
    }

    #[test]
    fn fig3_migration_preserves_grid_invariant() {
        // (8,2) -> (4,4), J = 16, exactly Fig. 3.
        let mut assign = GridAssignment::initial(Mapping::new(8, 2));
        let mut gen = TicketGen::new(1234);
        let state = build_state(&assign, 500, &mut gen);
        let uni = universe(&state);
        let plan = plan_step(&assign, Step::HalveRows);
        assert_eq!(plan.to, Mapping::new(4, 4));
        let next = apply_plan(&plan, &state);
        assign.apply_step(Step::HalveRows);
        assert_grid_invariant(&assign, &next, &uni);
    }

    #[test]
    fn migration_chains_preserve_grid_invariant() {
        let mut assign = GridAssignment::initial(Mapping::new(4, 4));
        let mut gen = TicketGen::new(77);
        let mut state = build_state(&assign, 300, &mut gen);
        let uni = universe(&state);
        for step in [
            Step::HalveRows,
            Step::HalveRows,
            Step::HalveCols,
            Step::HalveCols,
            Step::HalveCols,
            Step::HalveCols,
            Step::HalveRows,
        ] {
            let plan = plan_step(&assign, step);
            state = apply_plan(&plan, &state);
            assign.apply_step(step);
            assert_grid_invariant(&assign, &state, &uni);
        }
    }

    #[test]
    fn exchange_volume_matches_lemma_4_4() {
        // Moving (n,m) -> (n/2,2m) exchanges exactly the R state: each
        // machine sends |R|/n tuples, total J * |R|/n = m * |R| copies.
        let assign = GridAssignment::initial(Mapping::new(8, 4));
        let mut gen = TicketGen::new(5);
        let count = 2_000u64;
        let state = build_state(&assign, count, &mut gen);
        let plan = plan_step(&assign, Step::HalveRows);
        let mut moved = 0u64;
        for (k, machine_state) in state.iter().enumerate() {
            moved += machine_state
                .iter()
                .filter(|t| plan.specs[k].is_migrated(t))
                .count() as u64;
        }
        // Every R tuple is stored on m machines and each copy is exchanged
        // once: moved == m * |R| exactly.
        assert_eq!(moved, assign.mapping().m as u64 * count);
    }

    #[test]
    fn discards_are_exactly_half_of_refining_state() {
        let assign = GridAssignment::initial(Mapping::new(8, 4));
        let mut gen = TicketGen::new(9);
        let state = build_state(&assign, 4_000, &mut gen);
        let plan = plan_step(&assign, Step::HalveRows);
        let (mut kept_s, mut dropped_s) = (0u64, 0u64);
        for (k, machine_state) in state.iter().enumerate() {
            for t in machine_state {
                if t.rel == Rel::S {
                    match plan.specs[k].classify(t) {
                        StateClass::Keep => kept_s += 1,
                        StateClass::Discard => dropped_s += 1,
                        StateClass::KeepAndMigrate => panic!("S must not be exchanged here"),
                    }
                }
            }
        }
        let total = (kept_s + dropped_s) as f64;
        let frac = dropped_s as f64 / total;
        assert!((frac - 0.5).abs() < 0.05, "discarded fraction {frac}");
    }

    #[test]
    fn partner_is_symmetric() {
        let assign = GridAssignment::initial(Mapping::new(8, 2));
        let plan = plan_step(&assign, Step::HalveRows);
        for spec in &plan.specs {
            let partner_spec = &plan.specs[spec.partner];
            assert_eq!(partner_spec.partner, spec.machine);
            assert_ne!(spec.machine, spec.partner);
            // Partners end in the same row, complementary columns.
            assert_eq!(spec.new_pos.row, partner_spec.new_pos.row);
            assert_ne!(spec.new_pos.col, partner_spec.new_pos.col);
        }
    }

    #[test]
    fn keep_bits_are_complementary_across_partners() {
        let assign = GridAssignment::initial(Mapping::new(4, 4));
        let plan = plan_step(&assign, Step::HalveCols);
        for spec in &plan.specs {
            let partner_spec = &plan.specs[spec.partner];
            assert_ne!(spec.keep_bit, partner_spec.keep_bit);
        }
    }

    #[test]
    fn naive_plan_moves_far_more() {
        let assign = GridAssignment::initial(Mapping::new(8, 8));
        let mut gen = TicketGen::new(3);
        let count = 1_000u64;
        let state = build_state(&assign, count, &mut gen);
        let plan = plan_step(&assign, Step::HalveRows);
        let per_machine: Vec<(u64, u64)> = state
            .iter()
            .map(|ts| {
                let r = ts.iter().filter(|t| t.rel == Rel::R).count() as u64;
                let s = ts.iter().filter(|t| t.rel == Rel::S).count() as u64;
                (r, s)
            })
            .collect();
        let locality: u64 = state
            .iter()
            .enumerate()
            .map(|(k, ts)| ts.iter().filter(|t| plan.specs[k].is_migrated(t)).count() as u64)
            .sum();
        let naive = naive_moved_tuples(&assign, Step::HalveRows, &per_machine);
        assert!(
            naive > locality * 2,
            "naive ({naive}) should dwarf locality-aware ({locality})"
        );
    }
}
