//! Ticket-based nested partitioning.
//!
//! A reshuffler assigns every incoming tuple a uniformly random 64-bit
//! **ticket**. The tuple's partition among `p` partitions (`p` a power of
//! two) is the ticket's leading `log2 p` bits. Because the partition at
//! granularity `2p` refines the partition at granularity `p` by exactly one
//! more bit, the grid migrations of §4.2.1 become coordination-free:
//!
//! * when a relation's partition count **halves** (coarsening), sibling
//!   partitions `2i` and `2i+1` merge into `i` — realised by the pairwise
//!   *exchange* of Lemma 4.4;
//! * when it **doubles** (refinement), each joiner *discards* exactly the
//!   tuples whose next ticket bit does not match its new grid coordinate —
//!   deterministically, with zero communication, as required by §4.3.
//!
//! Tickets are drawn with a SplitMix64 generator: tiny, seedable, and good
//! enough statistically for load balancing (the paper's bounds hold "in
//! expectation with high probability" for any uniform assignment).

/// Partition index of `ticket` among `parts` partitions.
///
/// `parts` must be a power of two. The index is the leading `log2 parts`
/// bits of the ticket, so partitions nest as `parts` doubles.
#[inline]
pub fn partition(ticket: u64, parts: u32) -> u32 {
    debug_assert!(parts.is_power_of_two(), "parts must be a power of two");
    if parts <= 1 {
        return 0;
    }
    let bits = parts.trailing_zeros();
    (ticket >> (64 - bits)) as u32
}

/// The bit that decides which child a tuple falls into when its relation's
/// partition count doubles from `parts` to `2 * parts`:
/// `partition(t, 2p) == partition(t, p) * 2 + refine_bit(t, p)`.
#[inline]
pub fn refine_bit(ticket: u64, parts: u32) -> u32 {
    debug_assert!(parts.is_power_of_two());
    let bits = parts.trailing_zeros();
    ((ticket >> (63 - bits)) & 1) as u32
}

/// A tiny deterministic ticket generator (SplitMix64). Each reshuffler owns
/// one, seeded differently, so ticket draws are independent across
/// reshufflers yet the whole run stays reproducible.
#[derive(Clone, Debug)]
pub struct TicketGen {
    state: u64,
}

impl TicketGen {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> TicketGen {
        TicketGen {
            // Avoid the all-zero fixed point for seed 0.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Draw the next uniformly distributed ticket.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A stateless 64-bit mixer used where a tuple needs a *second* independent
/// uniform value (e.g. choosing the storage group in §4.2.2 independently
/// of the in-group partition).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a reshuffler chooses the ticket for each routed tuple.
///
/// Exactness never depends on this choice: in the matrix assignment any
/// row and any column intersect in exactly one cell, so *any* ticket —
/// random, key-derived, or hot-split — still produces every matching pair
/// exactly once. The mode is pure placement policy and can even change
/// mid-stream without a transition protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoutingMode {
    /// Fresh uniform ticket per tuple (the paper's operator). Best-balanced
    /// storage, but every cell must be probed for every tuple.
    #[default]
    Random,
    /// Ticket derived from the join key ([`keyed_ticket`]): all state for a
    /// key concentrates on one row/column. Skew-blind — a hot key melts a
    /// single cell. This is the baseline the skew experiment measures
    /// against.
    Keyed,
    /// [`RoutingMode::Keyed`] for cold keys, but once a key crosses the
    /// heavy-hitter threshold its build side draws fresh random tickets
    /// (spreading replicas across the whole row dimension) and its probe
    /// side round-robins columns via [`column_ticket`] — splitting the hot
    /// cell across the grid while every pair still meets exactly once.
    KeyedHotSplit,
}

/// Deterministic ticket for key-concentrated routing: every tuple of a key
/// draws the same ticket, so its row (for R) and column (for S) are fixed.
/// `salt` must be shared by all reshufflers of a run so they agree on the
/// placement; vary it per run to avoid cross-run key-position aliasing.
#[inline]
pub fn keyed_ticket(key: i64, salt: u64) -> u64 {
    mix64((key as u64) ^ salt)
}

/// A ticket whose leading `log2 m` bits select column `col` among `m`,
/// with the remaining bits drawn from `entropy` so nested refinement (and
/// thus elastic expansion) keeps working on hot-split tuples.
#[inline]
pub fn column_ticket(col: u32, m: u32, entropy: u64) -> u64 {
    debug_assert!(m.is_power_of_two(), "m must be a power of two");
    debug_assert!(col < m.max(1));
    if m <= 1 {
        return entropy;
    }
    let bits = m.trailing_zeros();
    let head = (col as u64) << (64 - bits);
    let mask = u64::MAX >> bits;
    head | (entropy & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_one_is_zero() {
        assert_eq!(partition(u64::MAX, 1), 0);
        assert_eq!(partition(0, 1), 0);
    }

    #[test]
    fn partition_uses_leading_bits() {
        // Ticket with the top two bits 10...
        let t = 0b10u64 << 62;
        assert_eq!(partition(t, 2), 1);
        assert_eq!(partition(t, 4), 2);
        assert_eq!(partition(t, 8), 4);
    }

    #[test]
    fn refinement_is_consistent() {
        let mut gen = TicketGen::new(42);
        for _ in 0..10_000 {
            let t = gen.next();
            for bits in 0..8 {
                let p = 1u32 << bits;
                assert_eq!(
                    partition(t, 2 * p),
                    partition(t, p) * 2 + refine_bit(t, p),
                    "nesting violated for ticket {t:#x} at {p} parts"
                );
            }
        }
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let mut gen = TicketGen::new(7);
        let parts = 16u32;
        let mut counts = vec![0u32; parts as usize];
        let n = 160_000;
        for _ in 0..n {
            counts[partition(gen.next(), parts) as usize] += 1;
        }
        let expected = n / parts;
        for (i, c) in counts.iter().enumerate() {
            let dev = (*c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "partition {i} off by {dev:.3}");
        }
    }

    #[test]
    fn ticketgen_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut g = TicketGen::new(1);
            (0..5).map(|_| g.next()).collect()
        };
        let b: Vec<u64> = {
            let mut g = TicketGen::new(1);
            (0..5).map(|_| g.next()).collect()
        };
        let c: Vec<u64> = {
            let mut g = TicketGen::new(2);
            (0..5).map(|_| g.next()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn keyed_ticket_is_stable_and_salt_sensitive() {
        assert_eq!(keyed_ticket(42, 7), keyed_ticket(42, 7));
        assert_ne!(keyed_ticket(42, 7), keyed_ticket(42, 8));
        assert_ne!(keyed_ticket(42, 7), keyed_ticket(43, 7));
    }

    #[test]
    fn column_ticket_pins_the_column_and_keeps_refinement() {
        let mut gen = TicketGen::new(3);
        for m in [1u32, 2, 4, 8] {
            for col in 0..m {
                for _ in 0..100 {
                    let t = column_ticket(col, m, gen.next());
                    if m > 1 {
                        assert_eq!(partition(t, m), col);
                    }
                    // Nested refinement still holds on the synthetic ticket.
                    assert_eq!(partition(t, 2 * m), partition(t, m) * 2 + refine_bit(t, m));
                }
            }
        }
    }

    #[test]
    fn column_ticket_low_bits_spread() {
        // The refinement bit below the column prefix must stay uniform so
        // a x4 expansion splits hot-split state evenly.
        let mut gen = TicketGen::new(5);
        let mut ones = 0;
        for _ in 0..10_000 {
            if refine_bit(column_ticket(2, 4, gen.next()), 4) == 1 {
                ones += 1;
            }
        }
        assert!((4000..6000).contains(&ones), "refine bit biased: {ones}");
    }

    #[test]
    fn mix64_spreads_sequential_inputs() {
        // Adjacent inputs should land in different halves often enough.
        let mut flips = 0;
        for x in 0..1000u64 {
            if (mix64(x) >> 63) != (mix64(x + 1) >> 63) {
                flips += 1;
            }
        }
        assert!(flips > 400, "only {flips} sign flips in 1000");
    }
}
