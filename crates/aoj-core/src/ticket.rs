//! Ticket-based nested partitioning.
//!
//! A reshuffler assigns every incoming tuple a uniformly random 64-bit
//! **ticket**. The tuple's partition among `p` partitions (`p` a power of
//! two) is the ticket's leading `log2 p` bits. Because the partition at
//! granularity `2p` refines the partition at granularity `p` by exactly one
//! more bit, the grid migrations of §4.2.1 become coordination-free:
//!
//! * when a relation's partition count **halves** (coarsening), sibling
//!   partitions `2i` and `2i+1` merge into `i` — realised by the pairwise
//!   *exchange* of Lemma 4.4;
//! * when it **doubles** (refinement), each joiner *discards* exactly the
//!   tuples whose next ticket bit does not match its new grid coordinate —
//!   deterministically, with zero communication, as required by §4.3.
//!
//! Tickets are drawn with a SplitMix64 generator: tiny, seedable, and good
//! enough statistically for load balancing (the paper's bounds hold "in
//! expectation with high probability" for any uniform assignment).

/// Partition index of `ticket` among `parts` partitions.
///
/// `parts` must be a power of two. The index is the leading `log2 parts`
/// bits of the ticket, so partitions nest as `parts` doubles.
#[inline]
pub fn partition(ticket: u64, parts: u32) -> u32 {
    debug_assert!(parts.is_power_of_two(), "parts must be a power of two");
    if parts <= 1 {
        return 0;
    }
    let bits = parts.trailing_zeros();
    (ticket >> (64 - bits)) as u32
}

/// The bit that decides which child a tuple falls into when its relation's
/// partition count doubles from `parts` to `2 * parts`:
/// `partition(t, 2p) == partition(t, p) * 2 + refine_bit(t, p)`.
#[inline]
pub fn refine_bit(ticket: u64, parts: u32) -> u32 {
    debug_assert!(parts.is_power_of_two());
    let bits = parts.trailing_zeros();
    ((ticket >> (63 - bits)) & 1) as u32
}

/// A tiny deterministic ticket generator (SplitMix64). Each reshuffler owns
/// one, seeded differently, so ticket draws are independent across
/// reshufflers yet the whole run stays reproducible.
#[derive(Clone, Debug)]
pub struct TicketGen {
    state: u64,
}

impl TicketGen {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> TicketGen {
        TicketGen {
            // Avoid the all-zero fixed point for seed 0.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Draw the next uniformly distributed ticket.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A stateless 64-bit mixer used where a tuple needs a *second* independent
/// uniform value (e.g. choosing the storage group in §4.2.2 independently
/// of the in-group partition).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_one_is_zero() {
        assert_eq!(partition(u64::MAX, 1), 0);
        assert_eq!(partition(0, 1), 0);
    }

    #[test]
    fn partition_uses_leading_bits() {
        // Ticket with the top two bits 10...
        let t = 0b10u64 << 62;
        assert_eq!(partition(t, 2), 1);
        assert_eq!(partition(t, 4), 2);
        assert_eq!(partition(t, 8), 4);
    }

    #[test]
    fn refinement_is_consistent() {
        let mut gen = TicketGen::new(42);
        for _ in 0..10_000 {
            let t = gen.next();
            for bits in 0..8 {
                let p = 1u32 << bits;
                assert_eq!(
                    partition(t, 2 * p),
                    partition(t, p) * 2 + refine_bit(t, p),
                    "nesting violated for ticket {t:#x} at {p} parts"
                );
            }
        }
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let mut gen = TicketGen::new(7);
        let parts = 16u32;
        let mut counts = vec![0u32; parts as usize];
        let n = 160_000;
        for _ in 0..n {
            counts[partition(gen.next(), parts) as usize] += 1;
        }
        let expected = n / parts;
        for (i, c) in counts.iter().enumerate() {
            let dev = (*c as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "partition {i} off by {dev:.3}");
        }
    }

    #[test]
    fn ticketgen_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut g = TicketGen::new(1);
            (0..5).map(|_| g.next()).collect()
        };
        let b: Vec<u64> = {
            let mut g = TicketGen::new(1);
            (0..5).map(|_| g.next()).collect()
        };
        let c: Vec<u64> = {
            let mut g = TicketGen::new(2);
            (0..5).map(|_| g.next()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mix64_spreads_sequential_inputs() {
        // Adjacent inputs should land in different halves often enough.
        let mut flips = 0;
        for x in 0..1000u64 {
            if (mix64(x) >> 63) != (mix64(x + 1) >> 63) {
                flips += 1;
            }
        }
        assert!(flips > 400, "only {flips} sign flips in 1000");
    }
}
