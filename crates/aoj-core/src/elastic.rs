//! Elastic expansion and contraction (§4.2.2 "Elasticity", Fig. 5,
//! Theorem 4.3).
//!
//! Rather than over-provisioning joiners up front, the operator starts
//! small and **expands**: at a migration checkpoint, if every joiner stores
//! more than `M/2` tuples (for a per-joiner capacity target `M`), each
//! joiner splits into four — the mapping goes `(n, m) → (2n, 2m)` — and
//! redistributes its state along both ticket axes. Each parent transmits at
//! most twice its stored state (Theorem 4.3: amortised cost `8/ε`), the
//! `n : m` ratio is unchanged, so the ILF competitive ratio is unaffected.
//!
//! The reverse move is the 4→1 **contraction**: when load drains, each
//! aligned 2×2 cell group merges back into one survivor and the mapping
//! goes `(n, m) → (n/2, m/2)`. The transfer pattern is Fig. 5 run
//! backwards, and strictly cheaper: relative to the survivor, the
//! same-row retiree ships only its S partition, the same-column retiree
//! only its R partition, and the diagonal retiree ships **nothing** (both
//! of its partitions are covered by the other two) — so a contraction
//! transmits at most 1× the retiring state, against the expansion's 2×
//! bound. [`plan_contraction`] computes the per-machine roles;
//! [`ElasticLayout`] tracks the dormant-machine pool so a later burst
//! re-expands into retired machines instead of growing the index space.

use crate::mapping::{GridAssignment, GridPos, Mapping};
use crate::ticket::refine_bit;
use crate::tuple::{Rel, Tuple};

/// Where a parent's stored tuple lives after a ×4 expansion.
///
/// Children are indexed by `(a, b)`: `a` is the tuple-row refinement bit,
/// `b` the column bit. Child `(0,0)` is the parent itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpandDestinations {
    /// Keep on the parent (child (0,0))?
    pub keep: bool,
    /// Send to child (0,1)?
    pub to_01: bool,
    /// Send to child (1,0)?
    pub to_10: bool,
    /// Send to child (1,1)?
    pub to_11: bool,
}

impl ExpandDestinations {
    /// Number of copies transmitted over the network.
    pub fn sends(&self) -> u32 {
        self.to_01 as u32 + self.to_10 as u32 + self.to_11 as u32
    }
}

/// One parent machine's role in an expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpandSpec {
    /// The parent machine.
    pub machine: usize,
    /// Parent's grid position before expansion.
    pub old_pos: GridPos,
    /// Machine ids of children `(0,1)`, `(1,0)`, `(1,1)` (the parent stays
    /// as child `(0,0)` at grid `(2·row, 2·col)`).
    pub children: [usize; 3],
    /// Row partition count before expansion (granularity of the R bit).
    pub n_before: u32,
    /// Column partition count before expansion (granularity of the S bit).
    pub m_before: u32,
}

impl ExpandSpec {
    /// Classify a stored tuple: which machines need it after expansion.
    ///
    /// An R tuple with row-bit `a` belongs to the new row `2i + a`, which
    /// spans children `(a, 0)` and `(a, 1)`; an S tuple with column-bit `b`
    /// belongs to new column `2j + b`, spanning `(0, b)` and `(1, b)` —
    /// exactly the transfer pattern of Fig. 5.
    pub fn destinations(&self, t: &Tuple) -> ExpandDestinations {
        match t.rel {
            Rel::R => {
                let a = refine_bit(t.ticket, self.n_before);
                if a == 0 {
                    // Rows (0, *): parent keeps, child (0,1) needs a copy.
                    ExpandDestinations {
                        keep: true,
                        to_01: true,
                        to_10: false,
                        to_11: false,
                    }
                } else {
                    // Rows (1, *): children (1,0) and (1,1).
                    ExpandDestinations {
                        keep: false,
                        to_01: false,
                        to_10: true,
                        to_11: true,
                    }
                }
            }
            Rel::S => {
                let b = refine_bit(t.ticket, self.m_before);
                if b == 0 {
                    ExpandDestinations {
                        keep: true,
                        to_01: false,
                        to_10: true,
                        to_11: false,
                    }
                } else {
                    ExpandDestinations {
                        keep: false,
                        to_01: true,
                        to_10: false,
                        to_11: true,
                    }
                }
            }
        }
    }
}

/// A complete expansion plan: every parent splits in four.
#[derive(Clone, Debug)]
pub struct ExpansionPlan {
    /// Mapping before expansion.
    pub from: Mapping,
    /// Mapping after: `(2n, 2m)`.
    pub to: Mapping,
    /// Per-parent roles, indexed by machine id.
    pub specs: Vec<ExpandSpec>,
}

/// Expansion trigger (§ Elasticity): after a migration checkpoint, expand
/// if the per-joiner state exceeds half the capacity target `M`.
pub fn should_expand(max_tuples_per_joiner: u64, capacity_m: u64) -> bool {
    max_tuples_per_joiner > capacity_m / 2
}

/// The live cluster-wide trigger (§4.2.2): expand when **every** active
/// joiner stores more than `M/2` — the cluster is uniformly full, not
/// merely skew-hot (a skewed hot spot is a migration problem, not a
/// capacity problem). Units are whatever the caller's gauges measure
/// (bytes under the unequal-tuple-size generalisation).
pub fn should_expand_cluster(per_joiner_stored: &[u64], capacity_m: u64) -> bool {
    !per_joiner_stored.is_empty()
        && per_joiner_stored
            .iter()
            .all(|&stored| should_expand(stored, capacity_m))
}

/// Build the expansion plan for the current assignment. Child machine ids
/// follow [`GridAssignment::apply_expansion`]'s deterministic allocation.
pub fn plan_expansion(assign: &GridAssignment) -> ExpansionPlan {
    let old_j = assign.j() as usize;
    let children: Vec<usize> = (old_j..4 * old_j).collect();
    plan_expansion_with(assign, &children)
}

/// Build the expansion plan with an explicit child allocation (see
/// [`GridAssignment::apply_expansion_with`]): the parent occupying the
/// `g`-th grid cell (row-major) gets `children[3g..3g+3]`. Used by the
/// elastic runtime to re-expand into machines a contraction retired.
pub fn plan_expansion_with(assign: &GridAssignment, children: &[usize]) -> ExpansionPlan {
    let from = assign.mapping();
    let to = Mapping::new(from.n * 2, from.m * 2);
    assert_eq!(
        children.len(),
        3 * from.j() as usize,
        "need 3 children per parent"
    );
    let mut specs = Vec::with_capacity(from.j() as usize);
    for r in 0..from.n {
        for c in 0..from.m {
            let g = (r * from.m + c) as usize;
            let machine = assign.machine_at(r, c);
            specs.push(ExpandSpec {
                machine,
                old_pos: assign.pos_of(machine),
                children: [children[3 * g], children[3 * g + 1], children[3 * g + 2]],
                n_before: from.n,
                m_before: from.m,
            });
        }
    }
    ExpansionPlan { from, to, specs }
}

/// Per-joiner contraction predicate (the low-water mirror of
/// [`should_expand`]): this joiner is drained when it stores strictly
/// less than the mark; a mark of 0 disables contraction outright.
pub fn should_contract(stored: u64, low_water: u64) -> bool {
    low_water > 0 && stored < low_water
}

/// The live contraction trigger (the low-water mirror of
/// [`should_expand_cluster`]): contract when **every** active joiner
/// satisfies [`should_contract`].
pub fn should_contract_cluster(per_joiner_stored: &[u64], low_water: u64) -> bool {
    !per_joiner_stored.is_empty()
        && per_joiner_stored
            .iter()
            .all(|&stored| should_contract(stored, low_water))
}

/// One machine's role in a 4→1 contraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContractRole {
    /// This machine survives, merging its group's state: it keeps all of
    /// its own state and absorbs the retirees' streams (three
    /// end-of-state markers, at most two of which carry tuples).
    Survive,
    /// This machine retires: it forwards `forward_rel` of its stored
    /// state (plus matching old-epoch arrivals) to the survivor, sends
    /// its end-of-state marker, then goes dormant.
    Retire {
        /// The surviving machine of this group.
        survivor: usize,
        /// Which relation this retiree ships: `Some(S)` for the
        /// survivor's row sibling, `Some(R)` for its column sibling,
        /// `None` for the diagonal (fully covered by the other two).
        forward_rel: Option<Rel>,
    },
}

/// One machine's contraction assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContractSpec {
    /// The machine this spec addresses.
    pub machine: usize,
    /// Its role in the merge.
    pub role: ContractRole,
}

/// A complete 4→1 contraction plan: every aligned 2×2 cell group merges
/// into its lowest-indexed member.
#[derive(Clone, Debug)]
pub struct ContractionPlan {
    /// Mapping before contraction.
    pub from: Mapping,
    /// Mapping after: `(n/2, m/2)`.
    pub to: Mapping,
    /// Per-machine roles, survivors first within each group, groups in
    /// row-major order of the contracted grid.
    pub specs: Vec<ContractSpec>,
    /// Machines that retire, sorted ascending (matches
    /// [`GridAssignment::apply_contraction`]'s return).
    pub retired: Vec<usize>,
    /// Machines that survive, sorted ascending.
    pub survivors: Vec<usize>,
}

/// Build the contraction plan for the current assignment. The survivor of
/// each group is its **lowest** machine index (so machine 0, hosting the
/// controller, can never retire); which relation each retiree forwards
/// follows from its position relative to the survivor: the row sibling
/// ships S, the column sibling ships R, the diagonal ships nothing.
pub fn plan_contraction(assign: &GridAssignment) -> ContractionPlan {
    let from = assign.mapping();
    assert!(
        from.n >= 2 && from.m >= 2,
        "contraction needs both grid axes >= 2 (got ({}, {}))",
        from.n,
        from.m
    );
    let to = Mapping::new(from.n / 2, from.m / 2);
    let mut specs = Vec::with_capacity(from.j() as usize);
    let mut retired = Vec::new();
    let mut survivors = Vec::new();
    for i in 0..to.n {
        for j in 0..to.m {
            let group = [
                assign.machine_at(2 * i, 2 * j),
                assign.machine_at(2 * i, 2 * j + 1),
                assign.machine_at(2 * i + 1, 2 * j),
                assign.machine_at(2 * i + 1, 2 * j + 1),
            ];
            let survivor = *group.iter().min().expect("group of four");
            survivors.push(survivor);
            specs.push(ContractSpec {
                machine: survivor,
                role: ContractRole::Survive,
            });
            let spos = assign.pos_of(survivor);
            for k in group {
                if k == survivor {
                    continue;
                }
                retired.push(k);
                let p = assign.pos_of(k);
                let forward_rel = if p.row == spos.row {
                    // Same row: the survivor already holds this R
                    // partition; only the S partition is new to it.
                    Some(Rel::S)
                } else if p.col == spos.col {
                    Some(Rel::R)
                } else {
                    None
                };
                specs.push(ContractSpec {
                    machine: k,
                    role: ContractRole::Retire {
                        survivor,
                        forward_rel,
                    },
                });
            }
        }
    }
    retired.sort_unstable();
    survivors.sort_unstable();
    ContractionPlan {
        from,
        to,
        specs,
        retired,
        survivors,
    }
}

/// Deterministic machine-slot bookkeeping for elastic runs: which indices
/// are dormant (retired by a contraction, reusable) and where fresh
/// indices start. Every active reshuffler evolves an identical copy by
/// applying the same expand/contract sequence, so they all compute the
/// same child allocation without coordination; machines activated
/// mid-run receive a snapshot instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElasticLayout {
    /// First machine index never yet activated.
    next_fresh: usize,
    /// Retired machine indices available for reuse, sorted ascending.
    dormant: Vec<usize>,
}

impl ElasticLayout {
    /// A layout where machines `0..active` are live and none are dormant.
    pub fn new(active: usize) -> ElasticLayout {
        ElasticLayout {
            next_fresh: active,
            dormant: Vec::new(),
        }
    }

    /// Rebuild a layout from checkpointed parts.
    pub fn from_parts(next_fresh: usize, mut dormant: Vec<usize>) -> ElasticLayout {
        dormant.sort_unstable();
        dormant.dedup();
        ElasticLayout {
            next_fresh,
            dormant,
        }
    }

    /// The machine indices the next expansion's children would get —
    /// dormant pool first (ascending), then fresh indices — without
    /// committing the allocation.
    pub fn peek_children(&self, need: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.dormant.iter().copied().take(need).collect();
        let fresh = need - out.len();
        out.extend(self.next_fresh..self.next_fresh + fresh);
        out
    }

    /// Commit an allocation of `need` children (see
    /// [`peek_children`](ElasticLayout::peek_children)).
    pub fn allocate_children(&mut self, need: usize) -> Vec<usize> {
        let out = self.peek_children(need);
        let reused = need.min(self.dormant.len());
        self.dormant.drain(..reused);
        self.next_fresh += need - reused;
        out
    }

    /// Return retired machines to the dormant pool.
    pub fn release(&mut self, retired: &[usize]) {
        self.dormant.extend_from_slice(retired);
        self.dormant.sort_unstable();
        self.dormant.dedup();
    }

    /// Machine slots ever activated (`max index + 1`): the bound the
    /// driver must have provisioned task/mailbox space for.
    pub fn high_water(&self) -> usize {
        self.next_fresh
    }

    /// Currently dormant machine indices.
    pub fn dormant(&self) -> &[usize] {
        &self.dormant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::{partition, TicketGen};

    #[test]
    fn trigger_threshold() {
        assert!(!should_expand(50, 100));
        assert!(should_expand(51, 100));
        assert!(!should_expand(0, 0));
    }

    #[test]
    fn cluster_trigger_requires_every_joiner_full() {
        assert!(should_expand_cluster(&[51, 60, 99, 70], 100));
        // One under-filled joiner (skew, not capacity) blocks expansion.
        assert!(!should_expand_cluster(&[51, 60, 50, 70], 100));
        assert!(!should_expand_cluster(&[], 100));
    }

    #[test]
    fn destinations_match_fig5() {
        let spec = ExpandSpec {
            machine: 0,
            old_pos: GridPos { row: 0, col: 0 },
            children: [4, 5, 6],
            n_before: 2,
            m_before: 2,
        };
        // R with bit 0 (ticket leading bits 0...): keep + (0,1).
        let r0 = Tuple::new(Rel::R, 0, 0, 0);
        let d = spec.destinations(&r0);
        assert!(d.keep && d.to_01 && !d.to_10 && !d.to_11);
        assert_eq!(d.sends(), 1);
        // R with bit 1 at granularity 2: bit index 1 of the ticket.
        let r1 = Tuple::new(Rel::R, 1, 0, 1 << 62);
        let d = spec.destinations(&r1);
        assert!(!d.keep && !d.to_01 && d.to_10 && d.to_11);
        assert_eq!(d.sends(), 2);
        // S with bit 0: keep + (1,0); S with bit 1: (0,1) + (1,1).
        let s0 = Tuple::new(Rel::S, 2, 0, 0);
        let d = spec.destinations(&s0);
        assert!(d.keep && !d.to_01 && d.to_10 && !d.to_11);
        let s1 = Tuple::new(Rel::S, 3, 0, 1 << 62);
        let d = spec.destinations(&s1);
        assert!(!d.keep && d.to_01 && !d.to_10 && d.to_11);
    }

    #[test]
    fn expansion_cost_is_at_most_twice_stored_state() {
        // Theorem 4.3's premise: each parent transmits <= 2x its state.
        let assign = GridAssignment::initial(Mapping::new(2, 2));
        let plan = plan_expansion(&assign);
        let mut gen = TicketGen::new(11);
        let spec = plan.specs[0];
        let mut stored = 0u64;
        let mut sent = 0u64;
        for i in 0..10_000u64 {
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            let t = Tuple::new(rel, i, 0, gen.next());
            stored += 1;
            sent += spec.destinations(&t).sends() as u64;
        }
        assert!(sent <= 2 * stored, "sent {sent} > 2x stored {stored}");
        // And it's not far below either (~1.5x in expectation).
        assert!(sent as f64 >= 1.4 * stored as f64);
    }

    #[test]
    fn contraction_trigger_is_strict_low_water() {
        assert!(should_contract_cluster(&[10, 20, 99], 100));
        assert!(!should_contract_cluster(&[10, 20, 100], 100));
        assert!(!should_contract_cluster(&[], 100));
        assert!(!should_contract_cluster(&[0, 0], 0), "0 disables");
    }

    #[test]
    fn contraction_plan_roles_follow_survivor_parity() {
        let assign = GridAssignment::initial(Mapping::new(2, 2));
        let plan = plan_contraction(&assign);
        assert_eq!(plan.to, Mapping::new(1, 1));
        assert_eq!(plan.survivors, vec![0]);
        assert_eq!(plan.retired, vec![1, 2, 3]);
        // Machine 0 sits at (0,0): machine 1 at (0,1) shares its row and
        // ships S; machine 2 at (1,0) ships R; machine 3 at (1,1) is the
        // diagonal and ships nothing.
        let role_of = |m: usize| plan.specs.iter().find(|s| s.machine == m).unwrap().role;
        assert_eq!(role_of(0), ContractRole::Survive);
        assert_eq!(
            role_of(1),
            ContractRole::Retire {
                survivor: 0,
                forward_rel: Some(Rel::S)
            }
        );
        assert_eq!(
            role_of(2),
            ContractRole::Retire {
                survivor: 0,
                forward_rel: Some(Rel::R)
            }
        );
        assert_eq!(
            role_of(3),
            ContractRole::Retire {
                survivor: 0,
                forward_rel: None
            }
        );
    }

    #[test]
    fn contracted_state_satisfies_grid_invariant() {
        // Simulate state on a (4,4) grid, contract to (2,2) by applying
        // each retiree's forward relation, and verify every survivor
        // holds exactly its merged partition of R and S — with no tuple
        // arriving twice (the 1x transfer bound depends on it).
        let mut assign = GridAssignment::initial(Mapping::new(4, 4));
        let mut gen = TicketGen::new(31);
        let from = assign.mapping();
        let mut state: Vec<Vec<Tuple>> = vec![Vec::new(); 16];
        let mut universe = Vec::new();
        for i in 0..2_000u64 {
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            let t = Tuple::new(rel, i, 0, gen.next());
            universe.push(t);
            match rel {
                Rel::R => {
                    let row = partition(t.ticket, from.n);
                    for mach in assign.machines_for_row(row) {
                        state[mach].push(t);
                    }
                }
                Rel::S => {
                    let col = partition(t.ticket, from.m);
                    for mach in assign.machines_for_col(col) {
                        state[mach].push(t);
                    }
                }
            }
        }
        let plan = plan_contraction(&assign);
        let mut merged: Vec<Vec<Tuple>> = vec![Vec::new(); 16];
        let mut sent = 0u64;
        let mut retiring_stored = 0u64;
        for spec in &plan.specs {
            match spec.role {
                ContractRole::Survive => {
                    merged[spec.machine].extend(state[spec.machine].iter().copied());
                }
                ContractRole::Retire {
                    survivor,
                    forward_rel,
                } => {
                    retiring_stored += state[spec.machine].len() as u64;
                    for t in &state[spec.machine] {
                        if Some(t.rel) == forward_rel {
                            merged[survivor].push(*t);
                            sent += 1;
                        }
                    }
                }
            }
        }
        assert!(
            sent <= retiring_stored,
            "contraction must transmit at most 1x the retiring state"
        );
        let retired = assign.apply_contraction();
        assert_eq!(retired, plan.retired);
        let to = assign.mapping();
        assert_eq!(to, plan.to);
        for &k in &plan.survivors {
            let pos = assign.pos_of(k);
            let mut expected: Vec<u64> = universe
                .iter()
                .filter(|t| match t.rel {
                    Rel::R => partition(t.ticket, to.n) == pos.row,
                    Rel::S => partition(t.ticket, to.m) == pos.col,
                })
                .map(|t| t.seq)
                .collect();
            let mut actual: Vec<u64> = merged[k].iter().map(|t| t.seq).collect();
            expected.sort_unstable();
            actual.sort_unstable();
            assert_eq!(actual, expected, "survivor {k} at {pos:?}");
        }
    }

    #[test]
    fn layout_allocates_pool_first_then_fresh() {
        let mut l = ElasticLayout::new(4);
        assert_eq!(l.allocate_children(12), (4..16).collect::<Vec<_>>());
        assert_eq!(l.high_water(), 16);
        l.release(&[5, 7, 6, 9, 8, 10, 11, 12, 13, 14, 15, 4]);
        assert_eq!(l.dormant().len(), 12);
        // Re-expansion reuses the pool before any fresh index.
        assert_eq!(l.peek_children(3), vec![4, 5, 6]);
        assert_eq!(l.allocate_children(3), vec![4, 5, 6]);
        assert_eq!(l.high_water(), 16, "no fresh indices consumed");
        // Exhausting the pool falls through to fresh allocation.
        let got = l.allocate_children(12);
        assert_eq!(&got[..9], &(7..16).collect::<Vec<_>>()[..]);
        assert_eq!(&got[9..], &[16, 17, 18]);
        assert_eq!(l.high_water(), 19);
    }

    #[test]
    fn expanded_state_satisfies_grid_invariant() {
        // Simulate state on a (2,2) grid, expand to (4,4), verify every
        // child holds exactly its partition of R and S.
        let mut assign = GridAssignment::initial(Mapping::new(2, 2));
        let mut gen = TicketGen::new(21);
        let from = assign.mapping();
        let mut state: Vec<Vec<Tuple>> = vec![Vec::new(); 4];
        let mut universe = Vec::new();
        for i in 0..2_000u64 {
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            let t = Tuple::new(rel, i, 0, gen.next());
            universe.push(t);
            match rel {
                Rel::R => {
                    let row = partition(t.ticket, from.n);
                    for mach in assign.machines_for_row(row) {
                        state[mach].push(t);
                    }
                }
                Rel::S => {
                    let col = partition(t.ticket, from.m);
                    for mach in assign.machines_for_col(col) {
                        state[mach].push(t);
                    }
                }
            }
        }
        let plan = plan_expansion(&assign);
        let mut next: Vec<Vec<Tuple>> = vec![Vec::new(); 16];
        for (k, tuples) in state.iter().enumerate() {
            let spec = plan.specs[k];
            for t in tuples {
                let d = spec.destinations(t);
                if d.keep {
                    next[k].push(*t);
                }
                if d.to_01 {
                    next[spec.children[0]].push(*t);
                }
                if d.to_10 {
                    next[spec.children[1]].push(*t);
                }
                if d.to_11 {
                    next[spec.children[2]].push(*t);
                }
            }
        }
        assign.apply_expansion();
        let to = assign.mapping();
        assert_eq!(to, Mapping::new(4, 4));
        for (k, machine_state) in next.iter().enumerate() {
            let pos = assign.pos_of(k);
            let mut expected: Vec<u64> = universe
                .iter()
                .filter(|t| match t.rel {
                    Rel::R => partition(t.ticket, to.n) == pos.row,
                    Rel::S => partition(t.ticket, to.m) == pos.col,
                })
                .map(|t| t.seq)
                .collect();
            let mut actual: Vec<u64> = machine_state.iter().map(|t| t.seq).collect();
            expected.sort_unstable();
            actual.sort_unstable();
            assert_eq!(actual, expected, "machine {k} at {pos:?}");
        }
    }
}
