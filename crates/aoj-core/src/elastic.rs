//! Elastic expansion (§4.2.2 "Elasticity", Fig. 5, Theorem 4.3).
//!
//! Rather than over-provisioning joiners up front, the operator starts
//! small and **expands**: at a migration checkpoint, if every joiner stores
//! more than `M/2` tuples (for a per-joiner capacity target `M`), each
//! joiner splits into four — the mapping goes `(n, m) → (2n, 2m)` — and
//! redistributes its state along both ticket axes. Each parent transmits at
//! most twice its stored state (Theorem 4.3: amortised cost `8/ε`), the
//! `n : m` ratio is unchanged, so the ILF competitive ratio is unaffected.

use crate::mapping::{GridAssignment, GridPos, Mapping};
use crate::ticket::refine_bit;
use crate::tuple::{Rel, Tuple};

/// Where a parent's stored tuple lives after a ×4 expansion.
///
/// Children are indexed by `(a, b)`: `a` is the tuple-row refinement bit,
/// `b` the column bit. Child `(0,0)` is the parent itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpandDestinations {
    /// Keep on the parent (child (0,0))?
    pub keep: bool,
    /// Send to child (0,1)?
    pub to_01: bool,
    /// Send to child (1,0)?
    pub to_10: bool,
    /// Send to child (1,1)?
    pub to_11: bool,
}

impl ExpandDestinations {
    /// Number of copies transmitted over the network.
    pub fn sends(&self) -> u32 {
        self.to_01 as u32 + self.to_10 as u32 + self.to_11 as u32
    }
}

/// One parent machine's role in an expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpandSpec {
    /// The parent machine.
    pub machine: usize,
    /// Parent's grid position before expansion.
    pub old_pos: GridPos,
    /// Machine ids of children `(0,1)`, `(1,0)`, `(1,1)` (the parent stays
    /// as child `(0,0)` at grid `(2·row, 2·col)`).
    pub children: [usize; 3],
    /// Row partition count before expansion (granularity of the R bit).
    pub n_before: u32,
    /// Column partition count before expansion (granularity of the S bit).
    pub m_before: u32,
}

impl ExpandSpec {
    /// Classify a stored tuple: which machines need it after expansion.
    ///
    /// An R tuple with row-bit `a` belongs to the new row `2i + a`, which
    /// spans children `(a, 0)` and `(a, 1)`; an S tuple with column-bit `b`
    /// belongs to new column `2j + b`, spanning `(0, b)` and `(1, b)` —
    /// exactly the transfer pattern of Fig. 5.
    pub fn destinations(&self, t: &Tuple) -> ExpandDestinations {
        match t.rel {
            Rel::R => {
                let a = refine_bit(t.ticket, self.n_before);
                if a == 0 {
                    // Rows (0, *): parent keeps, child (0,1) needs a copy.
                    ExpandDestinations {
                        keep: true,
                        to_01: true,
                        to_10: false,
                        to_11: false,
                    }
                } else {
                    // Rows (1, *): children (1,0) and (1,1).
                    ExpandDestinations {
                        keep: false,
                        to_01: false,
                        to_10: true,
                        to_11: true,
                    }
                }
            }
            Rel::S => {
                let b = refine_bit(t.ticket, self.m_before);
                if b == 0 {
                    ExpandDestinations {
                        keep: true,
                        to_01: false,
                        to_10: true,
                        to_11: false,
                    }
                } else {
                    ExpandDestinations {
                        keep: false,
                        to_01: true,
                        to_10: false,
                        to_11: true,
                    }
                }
            }
        }
    }
}

/// A complete expansion plan: every parent splits in four.
#[derive(Clone, Debug)]
pub struct ExpansionPlan {
    /// Mapping before expansion.
    pub from: Mapping,
    /// Mapping after: `(2n, 2m)`.
    pub to: Mapping,
    /// Per-parent roles, indexed by machine id.
    pub specs: Vec<ExpandSpec>,
}

/// Expansion trigger (§ Elasticity): after a migration checkpoint, expand
/// if the per-joiner state exceeds half the capacity target `M`.
pub fn should_expand(max_tuples_per_joiner: u64, capacity_m: u64) -> bool {
    max_tuples_per_joiner > capacity_m / 2
}

/// The live cluster-wide trigger (§4.2.2): expand when **every** active
/// joiner stores more than `M/2` — the cluster is uniformly full, not
/// merely skew-hot (a skewed hot spot is a migration problem, not a
/// capacity problem). Units are whatever the caller's gauges measure
/// (bytes under the unequal-tuple-size generalisation).
pub fn should_expand_cluster(per_joiner_stored: &[u64], capacity_m: u64) -> bool {
    !per_joiner_stored.is_empty()
        && per_joiner_stored
            .iter()
            .all(|&stored| should_expand(stored, capacity_m))
}

/// Build the expansion plan for the current assignment. Child machine ids
/// follow [`GridAssignment::apply_expansion`]'s deterministic allocation.
pub fn plan_expansion(assign: &GridAssignment) -> ExpansionPlan {
    let from = assign.mapping();
    let to = Mapping::new(from.n * 2, from.m * 2);
    let old_j = from.j() as usize;
    let specs = (0..old_j)
        .map(|machine| ExpandSpec {
            machine,
            old_pos: assign.pos_of(machine),
            children: [
                old_j + 3 * machine,
                old_j + 3 * machine + 1,
                old_j + 3 * machine + 2,
            ],
            n_before: from.n,
            m_before: from.m,
        })
        .collect();
    ExpansionPlan { from, to, specs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::{partition, TicketGen};

    #[test]
    fn trigger_threshold() {
        assert!(!should_expand(50, 100));
        assert!(should_expand(51, 100));
        assert!(!should_expand(0, 0));
    }

    #[test]
    fn cluster_trigger_requires_every_joiner_full() {
        assert!(should_expand_cluster(&[51, 60, 99, 70], 100));
        // One under-filled joiner (skew, not capacity) blocks expansion.
        assert!(!should_expand_cluster(&[51, 60, 50, 70], 100));
        assert!(!should_expand_cluster(&[], 100));
    }

    #[test]
    fn destinations_match_fig5() {
        let spec = ExpandSpec {
            machine: 0,
            old_pos: GridPos { row: 0, col: 0 },
            children: [4, 5, 6],
            n_before: 2,
            m_before: 2,
        };
        // R with bit 0 (ticket leading bits 0...): keep + (0,1).
        let r0 = Tuple::new(Rel::R, 0, 0, 0);
        let d = spec.destinations(&r0);
        assert!(d.keep && d.to_01 && !d.to_10 && !d.to_11);
        assert_eq!(d.sends(), 1);
        // R with bit 1 at granularity 2: bit index 1 of the ticket.
        let r1 = Tuple::new(Rel::R, 1, 0, 1 << 62);
        let d = spec.destinations(&r1);
        assert!(!d.keep && !d.to_01 && d.to_10 && d.to_11);
        assert_eq!(d.sends(), 2);
        // S with bit 0: keep + (1,0); S with bit 1: (0,1) + (1,1).
        let s0 = Tuple::new(Rel::S, 2, 0, 0);
        let d = spec.destinations(&s0);
        assert!(d.keep && !d.to_01 && d.to_10 && !d.to_11);
        let s1 = Tuple::new(Rel::S, 3, 0, 1 << 62);
        let d = spec.destinations(&s1);
        assert!(!d.keep && d.to_01 && !d.to_10 && d.to_11);
    }

    #[test]
    fn expansion_cost_is_at_most_twice_stored_state() {
        // Theorem 4.3's premise: each parent transmits <= 2x its state.
        let assign = GridAssignment::initial(Mapping::new(2, 2));
        let plan = plan_expansion(&assign);
        let mut gen = TicketGen::new(11);
        let spec = plan.specs[0];
        let mut stored = 0u64;
        let mut sent = 0u64;
        for i in 0..10_000u64 {
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            let t = Tuple::new(rel, i, 0, gen.next());
            stored += 1;
            sent += spec.destinations(&t).sends() as u64;
        }
        assert!(sent <= 2 * stored, "sent {sent} > 2x stored {stored}");
        // And it's not far below either (~1.5x in expectation).
        assert!(sent as f64 >= 1.4 * stored as f64);
    }

    #[test]
    fn expanded_state_satisfies_grid_invariant() {
        // Simulate state on a (2,2) grid, expand to (4,4), verify every
        // child holds exactly its partition of R and S.
        let mut assign = GridAssignment::initial(Mapping::new(2, 2));
        let mut gen = TicketGen::new(21);
        let from = assign.mapping();
        let mut state: Vec<Vec<Tuple>> = vec![Vec::new(); 4];
        let mut universe = Vec::new();
        for i in 0..2_000u64 {
            let rel = if i % 2 == 0 { Rel::R } else { Rel::S };
            let t = Tuple::new(rel, i, 0, gen.next());
            universe.push(t);
            match rel {
                Rel::R => {
                    let row = partition(t.ticket, from.n);
                    for mach in assign.machines_for_row(row) {
                        state[mach].push(t);
                    }
                }
                Rel::S => {
                    let col = partition(t.ticket, from.m);
                    for mach in assign.machines_for_col(col) {
                        state[mach].push(t);
                    }
                }
            }
        }
        let plan = plan_expansion(&assign);
        let mut next: Vec<Vec<Tuple>> = vec![Vec::new(); 16];
        for (k, tuples) in state.iter().enumerate() {
            let spec = plan.specs[k];
            for t in tuples {
                let d = spec.destinations(t);
                if d.keep {
                    next[k].push(*t);
                }
                if d.to_01 {
                    next[spec.children[0]].push(*t);
                }
                if d.to_10 {
                    next[spec.children[1]].push(*t);
                }
                if d.to_11 {
                    next[spec.children[2]].push(*t);
                }
            }
        }
        assign.apply_expansion();
        let to = assign.mapping();
        assert_eq!(to, Mapping::new(4, 4));
        for (k, machine_state) in next.iter().enumerate() {
            let pos = assign.pos_of(k);
            let mut expected: Vec<u64> = universe
                .iter()
                .filter(|t| match t.rel {
                    Rel::R => partition(t.ticket, to.n) == pos.row,
                    Rel::S => partition(t.ticket, to.m) == pos.col,
                })
                .map(|t| t.seq)
                .collect();
            let mut actual: Vec<u64> = machine_state.iter().map(|t| t.seq).collect();
            expected.sort_unstable();
            actual.sort_unstable();
            assert_eq!(actual, expected, "machine {k} at {pos:?}");
        }
    }
}
