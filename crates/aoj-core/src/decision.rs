//! The migration-decision algorithm (Alg. 2, §4.2.1) with the ε trade-off
//! of Theorem 4.2.
//!
//! Right after a migration the controller remembers committed cardinalities
//! `(|R|, |S|)` and accumulates deltas `(|ΔR|, |ΔS|)`. When either delta
//! reaches `ε ×` its committed total, the controller recomputes the optimal
//! mapping for the new totals, migrates if it differs from the current one,
//! and folds the deltas in. The paper proves (for `J` a power of two,
//! ratio within `J`, equal tuple sizes):
//!
//! * **Lemma 4.2** — the new optimum is at most one halving/doubling step
//!   away from the current mapping;
//! * **Lemma 4.3 / Theorem 4.2** — the ILF stays within
//!   `(3 + 2ε)/(3 + ε)` of optimal (1.25 at ε = 1);
//! * **Lemma 4.5 / Theorem 4.2** — amortised migration cost is `O(1/ε)`
//!   per input tuple.
//!
//! The decider is pure bookkeeping over cardinality estimates; feeding it
//! the controller's [`ScaledEstimator`](crate::stats::ScaledEstimator)
//! output reproduces the paper's decentralised control loop.

use crate::ilf::{effective_cardinalities, ilf_numerator, optimal_mapping};
use crate::mapping::Mapping;

/// Configuration for [`MigrationDecider`].
#[derive(Clone, Copy, Debug)]
pub struct DecisionConfig {
    /// ε as a rational `num/den`, `0 < ε ≤ 1`. Theorem 4.2: the competitive
    /// ratio is `(3 + 2ε)/(3 + ε)` and amortised cost `8/ε`.
    pub epsilon_num: u32,
    /// Denominator of ε.
    pub epsilon_den: u32,
    /// No decision is evaluated before the *estimated* total reaches this
    /// many tuples — the paper's warm-up ("the operator begins adapting
    /// after it has received at least 500K tuples", §5.4). This avoids
    /// thrashing on the first handful of arrivals where `|ΔR| ≥ |R|`
    /// trivially holds.
    pub min_total: u64,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            epsilon_num: 1,
            epsilon_den: 1,
            min_total: 0,
        }
    }
}

impl DecisionConfig {
    /// ε as a float (reporting only; decisions use exact integer math).
    pub fn epsilon(&self) -> f64 {
        self.epsilon_num as f64 / self.epsilon_den as f64
    }

    /// The proven competitive ratio `(3 + 2ε)/(3 + ε)` for this ε
    /// (Theorem 4.2; 1.25 at ε = 1).
    pub fn competitive_ratio(&self) -> f64 {
        let e = self.epsilon();
        (3.0 + 2.0 * e) / (3.0 + e)
    }

    /// The proven amortised communication cost `8/ε` per input tuple
    /// (Theorem 4.2).
    pub fn amortized_cost_bound(&self) -> f64 {
        8.0 / self.epsilon()
    }
}

/// The decider's committed statistics, detached from its configuration —
/// what a checkpoint stores so a restored session resumes Alg. 2 exactly
/// where it left off (config is code, not data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeciderSnapshot {
    /// Committed `|R|`.
    pub r: u64,
    /// Committed `|S|`.
    pub s: u64,
    /// Uncommitted `|ΔR|`.
    pub dr: u64,
    /// Uncommitted `|ΔS|`.
    pub ds: u64,
    /// Decision points evaluated.
    pub decisions: u64,
    /// Migrations triggered.
    pub migrations: u64,
}

/// What the controller should do after a decision point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Keep the current mapping (either no threshold crossed, or the
    /// current mapping is still optimal).
    Stay,
    /// Migrate to the returned mapping (strictly lower ILF).
    Migrate(Mapping),
}

/// Alg. 2 state. Cardinalities are abstract units (tuple counts, or bytes
/// under the unequal-tuple-size generalisation).
#[derive(Clone, Debug)]
pub struct MigrationDecider {
    cfg: DecisionConfig,
    j: u32,
    current: Mapping,
    r: u64,
    s: u64,
    dr: u64,
    ds: u64,
    decisions: u64,
    migrations: u64,
    // Skew-aware gate (runtime state, not configuration and not part of a
    // checkpoint: a restored controller re-learns the ratio within one
    // sketch publish interval). When `skew_gate > 0` and the last reported
    // p99/p50 load ratio reaches it, the warm-up threshold drops to
    // `min_total / 8` so a skewed-but-small state can still trigger a step.
    skew_gate: f64,
    skew_ratio: f64,
}

impl MigrationDecider {
    /// Start with `j` joiners under `initial` mapping.
    pub fn new(j: u32, initial: Mapping, cfg: DecisionConfig) -> MigrationDecider {
        assert_eq!(initial.j(), j, "initial mapping must use all J joiners");
        assert!(cfg.epsilon_num > 0 && cfg.epsilon_num <= cfg.epsilon_den);
        MigrationDecider {
            cfg,
            j,
            current: initial,
            r: 0,
            s: 0,
            dr: 0,
            ds: 0,
            decisions: 0,
            migrations: 0,
            skew_gate: 0.0,
            skew_ratio: 1.0,
        }
    }

    /// Arm the skew-aware warm-up gate: when the reported p99/p50 load
    /// ratio (see [`crate::sketch::SkewSketch::skew_ratio`]) reaches
    /// `gate`, the `min_total` warm-up threshold is divided by 8 so the
    /// decider reacts to skewed-but-small state. `0.0` disables (default).
    pub fn set_skew_gate(&mut self, gate: f64) {
        self.skew_gate = gate.max(0.0);
    }

    /// Report the latest observed p99/p50 per-key load ratio.
    pub fn note_skew(&mut self, ratio: f64) {
        if ratio.is_finite() {
            self.skew_ratio = ratio.max(1.0);
        }
    }

    /// The warm-up threshold currently in force, after any skew discount.
    pub fn effective_min_total(&self) -> u64 {
        if self.skew_gate > 0.0 && self.skew_ratio >= self.skew_gate {
            self.cfg.min_total / 8
        } else {
            self.cfg.min_total
        }
    }

    /// The mapping the decider believes the operator is running.
    #[inline]
    pub fn current(&self) -> Mapping {
        self.current
    }

    /// Committed totals `(|R|, |S|)`.
    #[inline]
    pub fn committed(&self) -> (u64, u64) {
        (self.r, self.s)
    }

    /// Deltas `(|ΔR|, |ΔS|)` since the last decision point.
    #[inline]
    pub fn deltas(&self) -> (u64, u64) {
        (self.dr, self.ds)
    }

    /// Decision points evaluated and migrations triggered so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.decisions, self.migrations)
    }

    /// Record `units` newly arrived units on R (resp. S) and check the
    /// migration condition (Alg. 1 line 6 + Alg. 2). Returns
    /// `Decision::Migrate` when the operator should change its mapping.
    pub fn observe(&mut self, is_r: bool, units: u64) -> Decision {
        self.observe_only(is_r, units);
        self.check()
    }

    /// Record arrivals without evaluating the migration condition. Used by
    /// operators that gate decision checks (e.g. while a migration is in
    /// flight, the controller keeps counting but defers Alg. 2 until all
    /// joiners have acked).
    #[inline]
    pub fn observe_only(&mut self, is_r: bool, units: u64) {
        if is_r {
            self.dr += units;
        } else {
            self.ds += units;
        }
    }

    /// Evaluate the Alg. 2 condition without new arrivals.
    pub fn check(&mut self) -> Decision {
        // Warm-up gate: do nothing until enough volume has been seen.
        // Heavily skewed load discounts the threshold (see `set_skew_gate`).
        if self.r + self.s + self.dr + self.ds < self.effective_min_total() {
            return Decision::Stay;
        }
        // |ΔR| ≥ ε|R| or |ΔS| ≥ ε|S|, in exact arithmetic:
        // ΔR·den ≥ R·num. With R = 0 this fires on the first delta, which
        // is Alg. 2's initialisation behaviour.
        let num = self.cfg.epsilon_num as u128;
        let den = self.cfg.epsilon_den as u128;
        let trig_r = self.dr as u128 * den >= self.r as u128 * num;
        let trig_s = self.ds as u128 * den >= self.s as u128 * num;
        if !(trig_r && self.dr > 0 || trig_s && self.ds > 0) {
            return Decision::Stay;
        }
        self.decisions += 1;
        // Choose the mapping minimising the ILF for the new totals
        // (Alg. 2 line 3), with the §4.2.2 padding applied so the ratio
        // assumption of Lemma 4.1 holds.
        let (re, se) = effective_cardinalities(self.j, self.r + self.dr, self.s + self.ds);
        let best = optimal_mapping(self.j, re, se);
        // Commit the deltas (Alg. 2 lines 5–6) whether or not we migrate.
        self.r += self.dr;
        self.s += self.ds;
        self.dr = 0;
        self.ds = 0;
        if best != self.current && ilf_numerator(re, se, best) < ilf_numerator(re, se, self.current)
        {
            self.migrations += 1;
            self.current = best;
            Decision::Migrate(best)
        } else {
            Decision::Stay
        }
    }

    /// Export the committed statistics for a checkpoint.
    pub fn snapshot(&self) -> DeciderSnapshot {
        DeciderSnapshot {
            r: self.r,
            s: self.s,
            dr: self.dr,
            ds: self.ds,
            decisions: self.decisions,
            migrations: self.migrations,
        }
    }

    /// Overwrite the committed statistics from a checkpoint. The mapping
    /// is restored separately via [`set_grid`](Self::set_grid) (it must
    /// match the restored grid's actual layout, whose `J` may differ from
    /// the initial one after elastic reconfiguration).
    pub fn restore(&mut self, snap: DeciderSnapshot) {
        self.r = snap.r;
        self.s = snap.s;
        self.dr = snap.dr;
        self.ds = snap.ds;
        self.decisions = snap.decisions;
        self.migrations = snap.migrations;
    }

    /// Re-seat the decider on a restored grid: adopts `mapping` *and* its
    /// joiner count, unlike [`set_current`](Self::set_current) which
    /// asserts `J` unchanged. Checkpoints may be taken after elastic
    /// expansion/contraction, where the live `J` differs from the one the
    /// decider was constructed with.
    pub fn set_grid(&mut self, mapping: Mapping) {
        self.j = mapping.j();
        self.current = mapping;
    }

    /// Inform the decider that the operator completed a migration to
    /// `mapping` (used when the operator executes multi-step chains and
    /// lands somewhere the decider should treat as current).
    pub fn set_current(&mut self, mapping: Mapping) {
        assert_eq!(mapping.j(), self.j);
        self.current = mapping;
    }

    /// Elastic ×4 expansion (§4.2.2, Theorem 4.3): the cluster grows
    /// `J → 4J` and the mapping `(n, m) → (2n, 2m)`. Committed
    /// cardinalities and deltas carry over unchanged — the `n : m` ratio
    /// is preserved, so the ILF-competitiveness argument of Theorem 4.2
    /// is unaffected and Alg. 2 keeps running against the larger grid.
    pub fn expand(&mut self) {
        self.j *= 4;
        self.current = Mapping::new(self.current.n * 2, self.current.m * 2);
    }

    /// Elastic 4→1 contraction: the cluster shrinks `J → J/4` and the
    /// mapping `(n, m) → (n/2, m/2)`. The exact inverse of
    /// [`expand`](MigrationDecider::expand) — cardinalities and deltas
    /// carry over, the `n : m` ratio is preserved, and Alg. 2 keeps
    /// running against the smaller grid.
    pub fn contract(&mut self) {
        assert!(
            self.current.n >= 2 && self.current.m >= 2,
            "cannot contract a ({}, {}) mapping",
            self.current.n,
            self.current.m
        );
        self.j /= 4;
        self.current = Mapping::new(self.current.n / 2, self.current.m / 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decider(j: u32) -> MigrationDecider {
        MigrationDecider::new(j, Mapping::square(j), DecisionConfig::default())
    }

    #[test]
    fn competitive_ratio_formula() {
        let cfg = DecisionConfig::default();
        assert!((cfg.competitive_ratio() - 1.25).abs() < 1e-12);
        let half = DecisionConfig {
            epsilon_num: 1,
            epsilon_den: 2,
            ..cfg
        };
        assert!((half.competitive_ratio() - 4.0 / 3.5).abs() < 1e-12);
        assert!((half.amortized_cost_bound() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn skew_gate_discounts_the_warmup_threshold() {
        let cfg = DecisionConfig {
            min_total: 800,
            ..DecisionConfig::default()
        };
        let mut d = MigrationDecider::new(4, Mapping::square(4), cfg);
        // 200 tuples: under min_total, no decision point.
        assert_eq!(d.observe(true, 200), Decision::Stay);
        assert_eq!(d.counters().0, 0);
        // Arm the gate but report a benign ratio: still dormant.
        d.set_skew_gate(8.0);
        d.note_skew(2.0);
        assert_eq!(d.effective_min_total(), 800);
        assert_eq!(d.check(), Decision::Stay);
        assert_eq!(d.counters().0, 0);
        // A skewed load report drops the threshold to min_total/8 = 100,
        // which the 200 buffered tuples already exceed.
        d.note_skew(20.0);
        assert_eq!(d.effective_min_total(), 100);
        d.check();
        assert_eq!(d.counters().0, 1, "skewed-but-small state must decide");
        // Non-finite reports are ignored.
        d.note_skew(f64::NAN);
        assert_eq!(d.effective_min_total(), 100);
    }

    #[test]
    fn first_tuple_triggers_a_decision_point() {
        let mut d = decider(16);
        // R=0 so |ΔR| >= |R| holds immediately. The §4.2.2 padding turns
        // (1, 0) into effective (1, 1), whose optimum is the square the
        // operator already runs — so the decision point fires but no
        // migration is needed.
        assert_eq!(d.observe(true, 1), Decision::Stay);
        assert_eq!(d.committed(), (1, 0), "deltas must be committed");
        assert_eq!(d.counters().0, 1, "a decision point must have fired");
    }

    #[test]
    fn warm_up_gate_defers_decisions() {
        let cfg = DecisionConfig {
            min_total: 100,
            ..Default::default()
        };
        let mut d = MigrationDecider::new(16, Mapping::square(16), cfg);
        for _ in 0..99 {
            assert_eq!(d.observe(true, 1), Decision::Stay);
        }
        // 100th unit crosses the gate and triggers: all-R input wants (16,1).
        assert_eq!(d.observe(true, 1), Decision::Migrate(Mapping::new(16, 1)));
    }

    #[test]
    fn balanced_input_stays_square() {
        let cfg = DecisionConfig {
            min_total: 64,
            ..Default::default()
        };
        let mut d = MigrationDecider::new(16, Mapping::square(16), cfg);
        let mut migrations = 0;
        for i in 0..100_000u64 {
            let dec = d.observe(i % 2 == 0, 1);
            if matches!(dec, Decision::Migrate(_)) {
                migrations += 1;
            }
        }
        assert_eq!(
            migrations, 0,
            "balanced streams must not trigger migrations"
        );
        assert_eq!(d.current(), Mapping::new(4, 4));
    }

    #[test]
    fn skewed_growth_walks_one_step_at_a_time() {
        // Start balanced at (4,4); then only S grows. Each decision point
        // moves at most one step (Lemma 4.2).
        let cfg = DecisionConfig {
            min_total: 8,
            ..Default::default()
        };
        let mut d = MigrationDecider::new(16, Mapping::square(16), cfg);
        for i in 0..128u64 {
            d.observe(i % 2 == 0, 1);
        }
        assert_eq!(d.current(), Mapping::new(4, 4));
        let mut seen = vec![d.current()];
        for _ in 0..1_000_000u64 {
            if let Decision::Migrate(mp) = d.observe(false, 1) {
                let prev = *seen.last().unwrap();
                let one_step = prev.halve_rows() == Some(mp) || prev.halve_cols() == Some(mp);
                assert!(one_step, "jumped from {prev:?} to {mp:?}");
                seen.push(mp);
            }
        }
        assert_eq!(*seen.last().unwrap(), Mapping::new(1, 16));
    }

    #[test]
    fn ilf_stays_competitive_under_adversarial_arrivals() {
        // Empirical Lemma 4.3: at every instant the running mapping's ILF
        // (computed on true cardinalities) is within 1.25 of the optimum,
        // once past the warm-up and with the ratio within J.
        use crate::ilf::{ilf, optimal_ilf};
        let j = 64u32;
        let cfg = DecisionConfig {
            min_total: 1000,
            ..Default::default()
        };
        let mut d = MigrationDecider::new(j, Mapping::square(j), cfg);
        let (mut r, mut s) = (0u64, 0u64);
        // Alternating bursts: R-heavy, then S-heavy, then mixed.
        let phases: &[(u64, u64, u64)] = &[
            (1, 0, 20_000),
            (0, 1, 60_000),
            (3, 1, 40_000),
            (1, 7, 80_000),
        ];
        let mut worst: f64 = 1.0;
        for &(wr, ws, steps) in phases {
            for i in 0..steps {
                let is_r = (i * (wr + ws) / steps.max(1)) % (wr + ws) < wr;
                if is_r {
                    r += 1;
                } else {
                    s += 1;
                }
                d.observe(is_r, 1);
                if r + s > 2000 && r.max(s) <= r.min(s) * j as u64 {
                    let ratio = ilf(r, s, d.current()) / optimal_ilf(j, r, s);
                    worst = worst.max(ratio);
                }
            }
        }
        assert!(worst <= 1.25 + 1e-9, "worst ILF ratio {worst}");
    }

    #[test]
    fn smaller_epsilon_tracks_tighter() {
        use crate::ilf::{ilf, optimal_ilf};
        let j = 64u32;
        let run = |num: u32, den: u32| -> (f64, u64) {
            let cfg = DecisionConfig {
                epsilon_num: num,
                epsilon_den: den,
                min_total: 1000,
            };
            let mut d = MigrationDecider::new(j, Mapping::square(j), cfg);
            let (mut r, mut s) = (0u64, 0u64);
            let mut worst: f64 = 1.0;
            for i in 0..200_000u64 {
                let is_r = i % 9 == 0; // S-heavy drift
                if is_r {
                    r += 1
                } else {
                    s += 1
                }
                d.observe(is_r, 1);
                if r + s > 4000 {
                    worst = worst.max(ilf(r, s, d.current()) / optimal_ilf(j, r, s));
                }
            }
            (worst, d.counters().1)
        };
        let (worst_1, migs_1) = run(1, 1);
        let (worst_q, migs_q) = run(1, 4);
        // ε=1/4: better (or equal) tracking, more decision activity.
        assert!(worst_q <= worst_1 + 1e-9);
        assert!(migs_q >= migs_1);
        // Both satisfy their theoretical bounds.
        assert!(worst_1 <= 1.25 + 1e-9);
        assert!(worst_q <= (3.0 + 2.0 * 0.25) / (3.0 + 0.25) + 1e-9);
    }

    #[test]
    fn expansion_rescales_decider_to_4j() {
        let mut d = decider(4);
        for i in 0..64u64 {
            d.observe(i % 2 == 0, 1);
        }
        assert_eq!(d.current(), Mapping::new(2, 2));
        d.expand();
        assert_eq!(d.current(), Mapping::new(4, 4));
        // Alg. 2 keeps running against the larger grid: a long S-only tail
        // may now walk all the way to (1, 16).
        for _ in 0..1_000_000u64 {
            d.observe(false, 1);
        }
        assert_eq!(d.current(), Mapping::new(1, 16));
    }

    #[test]
    fn commit_happens_even_without_migration() {
        let cfg = DecisionConfig {
            min_total: 4,
            ..Default::default()
        };
        let mut d = MigrationDecider::new(4, Mapping::square(4), cfg);
        for i in 0..16u64 {
            d.observe(i % 2 == 0, 1);
        }
        // Thresholds fired repeatedly; deltas must have been folded in.
        assert_eq!(
            d.committed().0 + d.committed().1 + d.deltas().0 + d.deltas().1,
            16
        );
        assert!(d.committed().0 > 0);
    }

    #[test]
    fn extreme_ratio_uses_padding_and_stays_at_edge() {
        let cfg = DecisionConfig {
            min_total: 10,
            ..Default::default()
        };
        let mut d = MigrationDecider::new(8, Mapping::square(8), cfg);
        for _ in 0..100_000u64 {
            d.observe(true, 1); // only R, ratio far beyond J
        }
        assert_eq!(d.current(), Mapping::new(8, 1));
    }
}
