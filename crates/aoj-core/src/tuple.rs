//! The stream tuple model.
//!
//! The operator is *content-insensitive* (§3.2): routing never looks at a
//! tuple's attributes, only at a uniformly random **ticket** drawn when the
//! tuple enters the operator. The ticket's leading bits name the tuple's
//! partition at every power-of-two granularity simultaneously (see
//! [`crate::ticket`]), which is what makes the paper's deterministic
//! discard/exchange migration possible without any coordination.

/// Which input stream a tuple belongs to. The paper joins two streams,
/// `R` and `S`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rel {
    /// The left stream (rows of the join matrix).
    R,
    /// The right stream (columns of the join matrix).
    S,
}

impl Rel {
    /// The opposite stream.
    #[inline]
    pub fn other(self) -> Rel {
        match self {
            Rel::R => Rel::S,
            Rel::S => Rel::R,
        }
    }

    /// `0` for `R`, `1` for `S`; handy for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Rel::R => 0,
            Rel::S => 1,
        }
    }
}

/// A stream tuple as seen by the operator.
///
/// Real attribute payloads are irrelevant to the operator's behaviour; what
/// matters is the join key (and an auxiliary attribute for richer
/// predicates), the wire size, and the routing ticket. Keeping the struct
/// `Copy` and 40 bytes wide keeps joiner state compact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Tuple {
    /// Global arrival sequence number assigned by the source; doubles as a
    /// unique id and as the arrival timestamp for latency accounting.
    pub seq: u64,
    /// Owning stream.
    pub rel: Rel,
    /// Join key (e.g. `orderkey`, `shipdate` as days, a supplier key…).
    pub key: i64,
    /// Secondary attribute available to theta predicates.
    pub aux: i32,
    /// Simulated payload size in bytes.
    pub bytes: u32,
    /// Uniformly random routing ticket; leading bits define the tuple's
    /// partition at every power-of-two granularity (see [`crate::ticket`]).
    pub ticket: u64,
}

impl Tuple {
    /// Convenience constructor used throughout tests and generators.
    pub fn new(rel: Rel, seq: u64, key: i64, ticket: u64) -> Tuple {
        Tuple {
            seq,
            rel,
            key,
            aux: 0,
            bytes: 64,
            ticket,
        }
    }

    /// Builder-style payload size override.
    pub fn with_bytes(mut self, bytes: u32) -> Tuple {
        self.bytes = bytes;
        self
    }

    /// Builder-style auxiliary attribute override.
    pub fn with_aux(mut self, aux: i32) -> Tuple {
        self.aux = aux;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_other_is_involution() {
        assert_eq!(Rel::R.other(), Rel::S);
        assert_eq!(Rel::S.other(), Rel::R);
        assert_eq!(Rel::R.other().other(), Rel::R);
    }

    #[test]
    fn rel_index() {
        assert_eq!(Rel::R.index(), 0);
        assert_eq!(Rel::S.index(), 1);
    }

    #[test]
    fn tuple_is_compact() {
        // The joiner stores millions of these; keep them within 40 bytes.
        assert!(std::mem::size_of::<Tuple>() <= 40);
    }

    #[test]
    fn builders() {
        let t = Tuple::new(Rel::R, 7, -3, 0xdead)
            .with_bytes(100)
            .with_aux(5);
        assert_eq!(t.seq, 7);
        assert_eq!(t.key, -3);
        assert_eq!(t.bytes, 100);
        assert_eq!(t.aux, 5);
        assert_eq!(t.ticket, 0xdead);
    }
}
