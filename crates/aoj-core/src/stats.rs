//! Decentralised statistics monitoring (Alg. 1, §4.1).
//!
//! Incoming tuples are shuffled uniformly at random across the `J`
//! reshufflers, so the controller — itself one of the reshufflers — can
//! estimate the *global* cardinalities by scaling the counts it observes
//! locally by `J`. No statistics channel, no synchronisation, no central
//! bottleneck; any reshuffler could take over the controller role after a
//! failure because the estimate is reconstructible from local observation.

/// The controller's scaled cardinality estimator. Counts are in tuples
/// (multiply by tuple size where bytes matter; §4.2.2 handles unequal
/// tuple sizes by counting "unit tuples").
#[derive(Clone, Debug)]
pub struct ScaledEstimator {
    scale: u64,
    r: u64,
    s: u64,
    dr: u64,
    ds: u64,
}

impl ScaledEstimator {
    /// `scale` is `J`, the number of reshufflers the input is spread over.
    pub fn new(scale: u64) -> ScaledEstimator {
        assert!(scale > 0);
        ScaledEstimator {
            scale,
            r: 0,
            s: 0,
            dr: 0,
            ds: 0,
        }
    }

    /// Record one locally observed tuple (Alg. 1 lines 3/5: "scaled
    /// increment"). `units` is the tuple's size in abstract units
    /// (1 for uniform tuples, bytes for the unequal-size generalisation).
    #[inline]
    pub fn observe_r(&mut self, units: u64) {
        self.dr += units * self.scale;
    }

    /// Record one locally observed S tuple.
    #[inline]
    pub fn observe_s(&mut self, units: u64) {
        self.ds += units * self.scale;
    }

    /// Estimated totals committed at the last migration decision.
    #[inline]
    pub fn committed(&self) -> (u64, u64) {
        (self.r, self.s)
    }

    /// Estimated arrivals since the last migration decision.
    #[inline]
    pub fn deltas(&self) -> (u64, u64) {
        (self.dr, self.ds)
    }

    /// Estimated current totals, committed plus deltas.
    #[inline]
    pub fn totals(&self) -> (u64, u64) {
        (self.r + self.dr, self.s + self.ds)
    }

    /// Fold the deltas into the committed totals (Alg. 2 lines 5–6).
    pub fn commit(&mut self) {
        self.r += self.dr;
        self.s += self.ds;
        self.dr = 0;
        self.ds = 0;
    }

    /// Reset everything (used when an operator restarts).
    pub fn reset(&mut self) {
        self.r = 0;
        self.s = 0;
        self.dr = 0;
        self.ds = 0;
    }
}

/// Chernoff-style relative-error bound for the scaled estimator: having
/// observed `k` local samples, the scaled estimate `k·J` is within relative
/// error `ε` of the true count with probability at least `1 − δ` where
/// `ε = sqrt(3·ln(2/δ) / k)`. The paper cites classical estimation theory
/// ("\[23\]") for such confidence bounds; this function makes the guarantee
/// concrete for tests and documentation.
pub fn relative_error_bound(local_samples: u64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0);
    if local_samples == 0 {
        return f64::INFINITY;
    }
    (3.0 * (2.0 / delta).ln() / local_samples as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_increments_match_alg1() {
        let mut e = ScaledEstimator::new(8);
        e.observe_r(1);
        e.observe_r(1);
        e.observe_s(1);
        assert_eq!(e.deltas(), (16, 8));
        assert_eq!(e.totals(), (16, 8));
        e.commit();
        assert_eq!(e.committed(), (16, 8));
        assert_eq!(e.deltas(), (0, 0));
    }

    #[test]
    fn unit_sizes_scale_estimates() {
        let mut e = ScaledEstimator::new(4);
        e.observe_r(10); // a 10-unit tuple counts as 10 unit tuples
        assert_eq!(e.deltas().0, 40);
    }

    #[test]
    fn estimator_is_statistically_sound() {
        // Simulate the real setting: N tuples uniformly shuffled over J
        // reshufflers; the controller sees ~N/J and scales by J.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let j = 16u64;
        let n = 200_000u64;
        let mut controller = ScaledEstimator::new(j);
        for _ in 0..n {
            if rng.gen_range(0..j) == 0 {
                controller.observe_r(1);
            }
        }
        let est = controller.totals().0 as f64;
        let err = (est - n as f64).abs() / n as f64;
        let bound = relative_error_bound(n / j, 0.001);
        assert!(
            err < bound,
            "relative error {err:.4} exceeds bound {bound:.4}"
        );
    }

    #[test]
    fn error_bound_shrinks_with_samples() {
        assert!(relative_error_bound(100, 0.05) > relative_error_bound(10_000, 0.05));
        assert!(relative_error_bound(0, 0.05).is_infinite());
    }

    #[test]
    fn reset_clears_state() {
        let mut e = ScaledEstimator::new(2);
        e.observe_r(1);
        e.commit();
        e.observe_s(1);
        e.reset();
        assert_eq!(e.totals(), (0, 0));
    }
}
