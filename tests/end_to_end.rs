//! Workspace-level integration tests: the full stack (datagen → operators
//! → simnet) on the paper's actual workloads, checking cross-crate
//! agreement and the headline claims at reduced scale.

use adaptive_online_joins::core::ilf::optimal_mapping;
use adaptive_online_joins::core::Predicate;
use adaptive_online_joins::datagen::queries::{self, reference_match_count};
use adaptive_online_joins::datagen::stream::{fluctuating, interleave};
use adaptive_online_joins::datagen::tpch::{ScaledGb, TpchDb};
use adaptive_online_joins::datagen::zipf::Skew;
use adaptive_online_joins::operators::{run, OperatorKind, RunConfig, SourcePacing};

fn small_db(skew: Skew) -> TpchDb {
    TpchDb::generate(
        ScaledGb {
            gb: 1,
            reduction: 1000,
        },
        skew,
        11,
    )
}

#[test]
fn eq5_output_is_exact_for_all_operators() {
    let db = small_db(Skew::Z2);
    let w = queries::eq5(&db);
    let expected = reference_match_count(&w);
    let arrivals = interleave(&w, 5);
    for kind in [
        OperatorKind::Dynamic,
        OperatorKind::StaticMid,
        OperatorKind::StaticOpt,
        OperatorKind::Shj,
    ] {
        let report = run(&arrivals, &w.predicate, w.name, &RunConfig::new(8, kind));
        assert_eq!(report.matches, expected, "{kind:?} on EQ5");
    }
}

#[test]
fn band_join_bci_is_exact_under_adaptivity() {
    let db = small_db(Skew::Z0);
    let w = queries::bci(&db);
    let expected = reference_match_count(&w);
    let arrivals = interleave(&w, 6);
    let report = run(
        &arrivals,
        &w.predicate,
        w.name,
        &RunConfig::new(16, OperatorKind::Dynamic),
    );
    assert_eq!(report.matches, expected);
    assert!(report.migrations > 0, "BCI's lopsided streams should adapt");
}

#[test]
fn bnci_is_exact() {
    let db = small_db(Skew::Z0);
    let w = queries::bnci(&db);
    let expected = reference_match_count(&w);
    let arrivals = interleave(&w, 8);
    let report = run(
        &arrivals,
        &w.predicate,
        w.name,
        &RunConfig::new(8, OperatorKind::Dynamic),
    );
    assert_eq!(report.matches, expected);
}

#[test]
fn fluct_join_is_exact_across_fluctuation_factors() {
    let db = small_db(Skew::Z0);
    let w = queries::fluct_join(&db);
    let expected = reference_match_count(&w);
    for k in [2u64, 8] {
        let arrivals = fluctuating(&w, k, 3);
        let report = run(
            &arrivals,
            &w.predicate,
            w.name,
            &RunConfig::new(16, OperatorKind::Dynamic),
        );
        assert_eq!(report.matches, expected, "k={k}");
        assert!(report.migrations >= 2, "k={k} should migrate repeatedly");
    }
}

#[test]
fn dynamic_converges_to_the_oracle_mapping_on_real_workloads() {
    let db = small_db(Skew::Z0);
    let w = queries::eq7(&db);
    let arrivals = interleave(&w, 2);
    let (r_bytes, s_bytes) = {
        let mut r = 0u64;
        let mut s = 0u64;
        for (rel, item) in &arrivals {
            match rel {
                adaptive_online_joins::core::Rel::R => r += item.bytes as u64,
                adaptive_online_joins::core::Rel::S => s += item.bytes as u64,
            }
        }
        (r, s)
    };
    let oracle = optimal_mapping(16, r_bytes, s_bytes);
    let report = run(
        &arrivals,
        &w.predicate,
        w.name,
        &RunConfig::new(16, OperatorKind::Dynamic),
    );
    assert_eq!(
        report.final_mapping, oracle,
        "Dynamic must land on the oracle mapping"
    );
}

#[test]
fn skew_does_not_degrade_dynamic_but_degrades_shj() {
    // Table 2's mechanism: per-machine peak storage at the paper's
    // 10 GB / 16-machine configuration. Needs the full-size key domain —
    // at tiny scale, key granularity hides the Zipf effect.
    let uniform = TpchDb::generate(ScaledGb::new(10), Skew::Z0, 11);
    let skewed = TpchDb::generate(ScaledGb::new(10), Skew::Z4, 11);
    let j = 16;
    let run_max_ilf = |db: &TpchDb, kind| {
        let w = queries::eq5(db);
        let arrivals = interleave(&w, 4);
        let cfg = RunConfig::new(j, kind); // unbounded RAM: compare imbalance
        run(&arrivals, &w.predicate, w.name, &cfg).max_ilf_bytes as f64
    };
    let shj_skew_blowup =
        run_max_ilf(&skewed, OperatorKind::Shj) / run_max_ilf(&uniform, OperatorKind::Shj);
    let dyn_skew_blowup =
        run_max_ilf(&skewed, OperatorKind::Dynamic) / run_max_ilf(&uniform, OperatorKind::Dynamic);
    assert!(
        shj_skew_blowup > 1.7,
        "SHJ's hottest machine should blow up under Z4 (got {shj_skew_blowup:.2}x)"
    );
    assert!(
        dyn_skew_blowup < 1.3,
        "Dynamic must be skew-insensitive (got {dyn_skew_blowup:.2}x)"
    );
}

#[test]
fn theta_closure_predicates_run_through_the_full_stack() {
    use adaptive_online_joins::core::Tuple;
    use std::sync::Arc;
    let db = small_db(Skew::Z1);
    let mut w = queries::eq5(&db);
    // Same key and even quantity: exercises the nested-loop path.
    w.predicate = Predicate::Theta(Arc::new(|r: &Tuple, s: &Tuple| {
        r.key == s.key && s.aux % 2 == 0
    }));
    let expected = reference_match_count(&w);
    let arrivals = interleave(&w, 13);
    let report = run(
        &arrivals,
        &w.predicate,
        w.name,
        &RunConfig::new(4, OperatorKind::Dynamic),
    );
    assert_eq!(report.matches, expected);
}

#[test]
fn paced_latency_is_far_below_saturated_latency() {
    let db = small_db(Skew::Z0);
    let w = queries::eq7(&db);
    let arrivals = interleave(&w, 1);
    let mut sat_cfg = RunConfig::new(8, OperatorKind::Dynamic);
    sat_cfg.window_copies = 0; // no backpressure: queues build up
    let saturated = run(&arrivals, &w.predicate, w.name, &sat_cfg);
    let mut paced_cfg = RunConfig::new(8, OperatorKind::Dynamic);
    paced_cfg.pacing = SourcePacing::per_second((saturated.throughput * 0.5) as u64);
    let paced = run(&arrivals, &w.predicate, w.name, &paced_cfg);
    assert!(
        paced.avg_latency_us < saturated.avg_latency_us,
        "pacing must reduce queueing latency ({} vs {})",
        paced.avg_latency_us,
        saturated.avg_latency_us
    );
}
